#include <gtest/gtest.h>

#include <random>

#include "decomp/hypertree.h"
#include "decomp/tree_projection.h"
#include "decomp/views.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "hypergraph/acyclic.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

// --- view sets --------------------------------------------------------------

TEST(ViewsTest, VkContainsQueryViewsAndUnions) {
  ConjunctiveQuery q = MakeQ1();  // 4 binary atoms in a square
  ViewSet v1 = BuildVk(q, 1);
  EXPECT_EQ(v1.size(), 4u);
  ViewSet v2 = BuildVk(q, 2);
  // 4 singletons + C(4,2)=6 unions, but the two diagonal unions both give
  // {A,B,C,D} and deduplicate: 4 + 6 - 1 = 9 distinct variable sets.
  EXPECT_EQ(v2.size(), 9u);
  for (std::size_t i = 0; i < v2.size(); ++i) {
    EXPECT_LE(v2.guards[i].size(), 2u);
    EXPECT_GE(v2.guards[i].size(), 1u);
  }
}

TEST(ViewsTest, DedupKeepsSmallestGuard) {
  // Two atoms over the same variables: the pair-union equals each
  // singleton's variable set, and the kept guard must have size 1.
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.AddAtomVars("s", {"Y", "X"});
  ViewSet v = BuildVk(q, 2);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.guards[0].size(), 1u);
}

TEST(ViewsTest, ViewsFromEdgesAreAbstract) {
  ViewSet v = ViewsFromEdges({IdSet{0, 1}, IdSet{1, 2}});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.guards[0].empty());
}

// --- tree projections -------------------------------------------------------

TEST(TreeProjectionTest, AcyclicCoverProjectsOntoItself) {
  std::vector<IdSet> cover = {IdSet{0, 1}, IdSet{1, 2}};
  auto result = FindTreeProjection(cover, ViewsFromEdges(cover));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsTreeProjection(result->tree, cover, ViewsFromEdges(cover)));
}

TEST(TreeProjectionTest, TriangleNeedsABigView) {
  std::vector<IdSet> triangle = {IdSet{0, 1}, IdSet{1, 2}, IdSet{0, 2}};
  EXPECT_FALSE(
      FindTreeProjection(triangle, ViewsFromEdges(triangle)).has_value());
  std::vector<IdSet> views = triangle;
  views.push_back(IdSet{0, 1, 2});
  EXPECT_TRUE(FindTreeProjection(triangle, ViewsFromEdges(views)).has_value());
}

TEST(TreeProjectionTest, UncoverableEdgeFails) {
  std::vector<IdSet> cover = {IdSet{0, 1, 2}};
  std::vector<IdSet> views = {IdSet{0, 1}, IdSet{1, 2}};
  EXPECT_FALSE(FindTreeProjection(cover, ViewsFromEdges(views)).has_value());
}

TEST(TreeProjectionTest, DisconnectedCoverIsStitched) {
  std::vector<IdSet> cover = {IdSet{0, 1}, IdSet{5, 6}};
  auto result = FindTreeProjection(cover, ViewsFromEdges(cover));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tree.bags.size(), 2u);
  EXPECT_TRUE(IsTreeProjection(result->tree, cover, ViewsFromEdges(cover)));
}

TEST(TreeProjectionTest, EmptyCoverYieldsEmptyTree) {
  auto result = FindTreeProjection({}, ViewsFromEdges({IdSet{0}}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->tree.bags.empty());
}

TEST(TreeProjectionTest, CostMinimizationPrefersCheaperViews) {
  // Two ways to cover {0,1}: view 0 (cost 10) or view 1 (cost 1).
  std::vector<IdSet> cover = {IdSet{0, 1}};
  ViewSet views = ViewsFromEdges({IdSet{0, 1}, IdSet{0, 1, 2}});
  TreeProjectionOptions options;
  options.bag_cost = [](const IdSet&, int view_id) {
    return view_id == 0 ? 10.0 : 1.0;
  };
  auto result = FindTreeProjection(cover, views, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tree.view_ids[0], 1);
  EXPECT_EQ(result->total_cost, 1.0);
}

TEST(TreeProjectionTest, InfeasibleCostsActAsFilters) {
  std::vector<IdSet> cover = {IdSet{0, 1}};
  ViewSet views = ViewsFromEdges({IdSet{0, 1}});
  TreeProjectionOptions options;
  options.bag_cost = [](const IdSet&, int) {
    return std::numeric_limits<double>::infinity();
  };
  EXPECT_FALSE(FindTreeProjection(cover, views, options).has_value());
}

// Normal-form search vs exhaustive-bags search on random small instances:
// they must agree on existence.
TEST(TreeProjectionTest, NormalFormAgreesWithExhaustiveOnRandomInstances) {
  std::mt19937_64 rng(7);
  int disagreements = 0;
  int feasible = 0;
  for (int trial = 0; trial < 120; ++trial) {
    int n = 4 + static_cast<int>(rng() % 3);  // 4..6 nodes
    auto random_edge = [&rng, n](int max_size) {
      IdSet e;
      int size = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                  max_size));
      for (int i = 0; i < size; ++i) {
        e.Insert(static_cast<std::uint32_t>(rng() %
                                            static_cast<std::uint64_t>(n)));
      }
      return e;
    };
    std::vector<IdSet> cover;
    for (int i = 0; i < 4; ++i) cover.push_back(random_edge(2));
    std::vector<IdSet> view_edges;
    for (int i = 0; i < 4; ++i) view_edges.push_back(random_edge(3));
    ViewSet views = ViewsFromEdges(view_edges);

    bool normal = FindTreeProjection(cover, views).has_value();
    TreeProjectionOptions exhaustive;
    exhaustive.exhaustive_bags = true;
    bool reference = FindTreeProjection(cover, views, exhaustive).has_value();
    if (normal != reference) ++disagreements;
    if (reference) ++feasible;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(feasible, 10);  // the sample covers both outcomes
}

// --- hypertree widths of the paper's structures ------------------------------

TEST(HypertreeWidthTest, AcyclicQueriesHaveWidthOne) {
  EXPECT_EQ(HypertreeWidth(MakeQh2(3), 3), 1);
}

TEST(HypertreeWidthTest, Q0HasHypertreeWidthTwo) {
  // Figure 2: a width-2 hypertree decomposition exists; Q0 is cyclic, so
  // width 1 is impossible.
  EXPECT_EQ(HypertreeWidth(MakeQ0(), 3), 2);
}

TEST(HypertreeWidthTest, Q1SquareHasWidthTwo) {
  EXPECT_EQ(HypertreeWidth(MakeQ1(), 3), 2);
}

TEST(HypertreeWidthTest, Qn1HasWidthTwo) {
  // Example A.2: every Q^n_1 has hypertree width 2.
  EXPECT_EQ(HypertreeWidth(MakeQn1(4), 3), 2);
}

TEST(HypertreeWidthTest, BicliqueWidthGrowsWithN) {
  // Theorem A.3: ghw(Q^n_2) = n.
  EXPECT_EQ(HypertreeWidth(MakeQn2(2), 4), 2);
  EXPECT_EQ(HypertreeWidth(MakeQn2(3), 4), 3);
}

TEST(HypertreeWidthTest, WidthBudgetRespected) {
  EXPECT_FALSE(HypertreeWidth(MakeQn2(3), 2).has_value());
}

TEST(HypergraphWidthTest, StandaloneHypergraph) {
  // Triangle: width 2. Path: width 1.
  EXPECT_EQ(HypergraphHypertreeWidth(
                {IdSet{0, 1}, IdSet{1, 2}, IdSet{0, 2}}, 3),
            2);
  EXPECT_EQ(HypergraphHypertreeWidth({IdSet{0, 1}, IdSet{1, 2}}, 3), 1);
}

// --- hypertree validation ----------------------------------------------------

TEST(HypertreeTest, FindDecompositionSatisfiesGhdConditions) {
  ConjunctiveQuery q = MakeQ0();
  auto ht = FindHypertreeDecomposition(q, 3);
  ASSERT_TRUE(ht.has_value());
  std::string why;
  EXPECT_TRUE(IsGeneralizedHypertreeDecomposition(*ht, q, &why)) << why;
  EXPECT_EQ(ht->width(), 2);
}

TEST(HypertreeTest, NormalFormSearchSatisfiesDescendantCondition) {
  // The normal-form candidates chi = vars(lambda) ∩ (component ∪ connector)
  // yield full hypertree decompositions on the paper's queries.
  for (int n : {3, 4}) {
    ConjunctiveQuery q = MakeQn1(n);
    auto ht = FindHypertreeDecomposition(q, 3);
    ASSERT_TRUE(ht.has_value());
    EXPECT_TRUE(SatisfiesDescendantCondition(*ht, q));
  }
}

TEST(HypertreeTest, MakeCompleteAddsMissingAtoms) {
  ConjunctiveQuery q = MakeQh2(2);
  auto ht = FindHypertreeDecomposition(q, 2);
  ASSERT_TRUE(ht.has_value());
  Hypertree complete = MakeComplete(*ht, q);
  EXPECT_TRUE(IsCompleteDecomposition(complete, q));
  std::string why;
  EXPECT_TRUE(IsGeneralizedHypertreeDecomposition(complete, q, &why)) << why;
}

TEST(HypertreeTest, PaperHypertreesForQh2AreValid) {
  const int h = 3;
  ConjunctiveQuery q = MakeQh2(h);
  Hypertree naive = MakeQh2NaiveHypertree(q, h);
  Hypertree merged = MakeQh2MergedHypertree(q, h);
  std::string why;
  EXPECT_TRUE(IsGeneralizedHypertreeDecomposition(naive, q, &why)) << why;
  EXPECT_TRUE(IsGeneralizedHypertreeDecomposition(merged, q, &why)) << why;
  EXPECT_TRUE(IsCompleteDecomposition(naive, q));
  EXPECT_TRUE(IsCompleteDecomposition(merged, q));
  EXPECT_EQ(naive.width(), 1);
  EXPECT_EQ(merged.width(), 2);
}

// Random acyclic queries must always admit width-1 decompositions.
TEST(HypertreeWidthTest, RandomAcyclicQueriesHaveWidthOne) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomQueryParams p;
    p.num_vars = 8;
    p.num_atoms = 6;
    p.max_arity = 3;
    p.force_acyclic = true;
    p.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(p);
    ASSERT_TRUE(IsAcyclic(q.BuildHypergraph())) << "seed " << seed;
    EXPECT_EQ(HypertreeWidth(q, 2), 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sharpcq
