// The differential oracle: the paper's strategy split (acyclic PS13,
// #-hypertree decompositions, hybrid #b, backtracking) gives several
// independent code paths that must agree on every count. This suite runs
// ~200 random query/database pairs through every applicable strategy and
// asserts they all return the brute-force answer — the honesty check behind
// the concurrent batch engine, whose jobs may be served by any strategy a
// cached plan picked.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/enumerate_answers.h"
#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/random_gen.h"
#include "hypergraph/acyclic.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

struct OracleCase {
  ConjunctiveQuery query;
  Database db;
  std::uint64_t seed = 0;
};

// A deterministic mixed workload: acyclic and cyclic shapes, varying
// variable/atom/arity/free budgets, small databases (brute force is the
// oracle, so instances must stay enumerable).
std::vector<OracleCase> MakeCases(std::uint64_t first_seed,
                                  std::uint64_t last_seed) {
  std::vector<OracleCase> cases;
  for (std::uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 4 + static_cast<int>(seed % 3);       // 4..6
    qp.num_atoms = 3 + static_cast<int>(seed % 3);      // 3..5
    qp.max_arity = 2 + static_cast<int>(seed % 2);      // 2..3
    qp.num_free = 1 + static_cast<int>(seed % 3);       // 1..3
    qp.num_relations = 2 + static_cast<int>(seed % 3);  // 2..4
    qp.force_acyclic = (seed % 2 == 0);
    qp.seed = seed;
    OracleCase c;
    c.query = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 8 + static_cast<int>(seed % 5);
    dp.seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    c.db = MakeRandomDatabase(c.query, dp);
    c.seed = seed;
    cases.push_back(std::move(c));
  }
  return cases;
}

// Which optional strategies a case exercised (the always-applicable ones
// run unconditionally).
struct Exercised {
  bool ps13 = false;
  bool enumeration = false;
};

// Runs every applicable strategy on one case against the backtracking
// oracle.
Exercised CheckAllStrategiesAgree(const OracleCase& c, CountingEngine* engine) {
  const CountInt expected = CountByBacktracking(c.query, c.db);
  Exercised exercised;

  // Second independent brute force: join-then-project.
  EXPECT_EQ(CountByJoinProject(c.query, c.db), expected) << "seed " << c.seed;

  // The engine's default policy (whatever strategy the planner picked).
  CountResult full = engine->Count(c.query, c.db);
  EXPECT_EQ(full.count, expected)
      << "seed " << c.seed << " via " << full.method;

  // Structural-only policy: #-hypertree or backtracking.
  PlannerOptions sharp_only;
  sharp_only.enable_acyclic_ps13 = false;
  sharp_only.enable_hybrid = false;
  CountResult structural = engine->Count(c.query, c.db, sharp_only);
  EXPECT_EQ(structural.count, expected)
      << "seed " << c.seed << " via " << structural.method;

  // Hybrid #b policy (execution-time decomposition search).
  PlannerOptions hybrid;
  hybrid.enable_acyclic_ps13 = false;
  hybrid.enable_hybrid = true;
  CountResult hybrid_result = engine->Count(c.query, c.db, hybrid);
  EXPECT_EQ(hybrid_result.count, expected)
      << "seed " << c.seed << " via " << hybrid_result.method;

  // Direct PS13 on the query's own join tree, when acyclic and every free
  // variable occurs in an atom (the executor's precondition).
  if (IsAcyclic(c.query.BuildHypergraph()) &&
      c.query.free_vars().IsSubsetOf(c.query.AllVars())) {
    EXPECT_EQ(CountByAcyclicPs13(c.query, c.db).count, expected)
        << "seed " << c.seed;
    exercised.ps13 = true;
  }

  // Enumeration through a #-hypertree decomposition must emit exactly
  // `expected` answers when a width-3 decomposition exists.
  std::optional<std::size_t> enumerated = EnumerateAnswers(
      c.query, c.db, /*k=*/3, [](const std::vector<Value>&) { return true; });
  if (enumerated.has_value()) {
    EXPECT_EQ(CountInt{*enumerated}, expected) << "seed " << c.seed;
    exercised.enumeration = true;
  }
  return exercised;
}

TEST(DifferentialOracleTest, TwoHundredRandomInstancesAgreeEverywhere) {
  CountingEngine engine;
  std::vector<OracleCase> cases = MakeCases(1, 200);
  ASSERT_EQ(cases.size(), 200u);
  int ps13_applicable = 0;
  int enumerable = 0;
  for (const OracleCase& c : cases) {
    Exercised exercised = CheckAllStrategiesAgree(c, &engine);
    if (exercised.ps13) ++ps13_applicable;
    if (exercised.enumeration) ++enumerable;
  }
  // The workload must actually exercise the optional strategies, not just
  // the always-applicable ones.
  EXPECT_GT(ps13_applicable, 50);
  EXPECT_GT(enumerable, 25);
}

TEST(DifferentialOracleTest, MorselParallelCountsAgreeWithSequential) {
  // Morsel parallelism forced on for every probe loop (threshold 1, tiny
  // morsels, a real pool) vs forced off: every strategy must return
  // identical counts on the same workload. This is the intra-query
  // analogue of the batch-vs-sequential check below, and the suite the
  // ASan/TSan CI jobs run against the morsel dispatch.
  EngineOptions parallel_options;
  parallel_options.batch_threads = 3;
  parallel_options.morsel_rows = 2;
  parallel_options.morsel_row_threshold = 1;
  CountingEngine parallel_engine(parallel_options);
  EngineOptions sequential_options;
  sequential_options.enable_morsel_parallelism = false;
  CountingEngine sequential_engine(sequential_options);

  std::vector<PlannerOptions> policies;
  policies.push_back(PlannerOptions{});  // planner default
  PlannerOptions sharp_only;
  sharp_only.enable_acyclic_ps13 = false;
  sharp_only.enable_hybrid = false;
  policies.push_back(sharp_only);
  PlannerOptions hybrid;
  hybrid.enable_acyclic_ps13 = false;
  hybrid.enable_hybrid = true;
  policies.push_back(hybrid);

  std::vector<OracleCase> cases = MakeCases(241, 300);
  for (const OracleCase& c : cases) {
    for (const PlannerOptions& policy : policies) {
      CountResult par = parallel_engine.Count(c.query, c.db, policy);
      CountResult seq = sequential_engine.Count(c.query, c.db, policy);
      EXPECT_EQ(par.count, seq.count)
          << "seed " << c.seed << " via " << par.method << " / "
          << seq.method;
    }
  }
}

TEST(DifferentialOracleTest, BatchAgreesWithSequentialOnMixedWorkload) {
  // The concurrent batch path must return exactly what one-at-a-time
  // counting returns, in job order.
  EngineOptions options;
  options.batch_threads = 4;
  CountingEngine engine(options);
  std::vector<OracleCase> cases = MakeCases(201, 240);

  std::vector<CountJob> jobs;
  jobs.reserve(cases.size());
  for (const OracleCase& c : cases) jobs.push_back({c.query, &c.db});
  std::vector<CountResult> results = engine.CountBatch(jobs);

  ASSERT_EQ(results.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(results[i].count, CountByBacktracking(cases[i].query, cases[i].db))
        << "seed " << cases[i].seed << " via " << results[i].method;
  }
}

}  // namespace
}  // namespace sharpcq
