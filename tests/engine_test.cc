#include <gtest/gtest.h>

#include "count/enumeration.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "hypergraph/acyclic.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

// --- planner policy ----------------------------------------------------------

TEST(PlannerTest, AcyclicQueryGetsWidthOneSharpPlan) {
  // A quantifier-light path query: acyclic colored core, frontier covered
  // by single atoms, so the structural strategy wins at width 1.
  ConjunctiveQuery q = Parse("Q(X,Y,Z) <- r(X,Y), s(Y,Z)");
  CountingPlan plan = MakePlan(q);
  EXPECT_EQ(plan.strategy, PlanStrategy::kSharpHypertree);
  EXPECT_EQ(plan.width_budget, 1);
  EXPECT_EQ(plan.analysis.sharp_hypertree_width, 1);
  ASSERT_TRUE(plan.sharp.has_value());
}

TEST(PlannerTest, Q0GetsWidthTwoSharpPlan) {
  CountingPlan plan = MakePlan(MakeQ0());
  EXPECT_EQ(plan.strategy, PlanStrategy::kSharpHypertree);
  EXPECT_EQ(plan.width_budget, 2);  // Figure 3(c)
}

TEST(PlannerTest, HybridFamilyGetsSharpBPlan) {
  // Example 6.3: unbounded #-htw, cyclic hypergraph -> the hybrid strategy.
  PlannerOptions options;
  options.max_width = 2;
  CountingPlan plan = MakePlan(MakeQbarh2(3), options);
  EXPECT_EQ(plan.strategy, PlanStrategy::kSharpB);
}

TEST(PlannerTest, AcyclicUnboundedWidthFamilyGetsPs13Plan) {
  // Example C.1: Q^h_2 is acyclic but needs #-htw ~ h; with a small width
  // budget the acyclic PS13 strategy takes over (instead of backtracking).
  PlannerOptions options;
  options.max_width = 3;
  CountingPlan plan = MakePlan(MakeQh2(5), options);
  EXPECT_TRUE(plan.analysis.is_acyclic);
  EXPECT_EQ(plan.strategy, PlanStrategy::kAcyclicPs13);
}

TEST(PlannerTest, StrategyGatesRestoreLegacyBehavior) {
  PlannerOptions options;
  options.max_width = 3;
  options.enable_acyclic_ps13 = false;
  options.enable_hybrid = false;
  CountingPlan plan = MakePlan(MakeQh2(5), options);
  EXPECT_EQ(plan.strategy, PlanStrategy::kBacktracking);

  options.enable_hybrid = true;
  plan = MakePlan(MakeQh2(5), options);
  EXPECT_EQ(plan.strategy, PlanStrategy::kSharpB);
}

TEST(PlannerTest, PlanCarriesProfileAndCost) {
  CountingPlan plan = MakePlan(MakeQ0());
  EXPECT_EQ(plan.analysis.num_atoms, 9u);
  EXPECT_GT(plan.cost.db_exponent, 0.0);
  EXPECT_NE(plan.DebugString().find("sharp-hypertree"), std::string::npos);
}

// --- plan cache --------------------------------------------------------------

TEST(PlanCacheTest, CanonicalizedVariantsHitTheCache) {
  CountingEngine engine;
  ConjunctiveQuery a = Parse("Q(A,C) <- s1(A,B), s2(B,C), s3(C,D), s4(D,A)");
  // The same square, variables renamed and atoms rotated.
  ConjunctiveQuery b = Parse("Q(X,Z) <- s3(Z,W), s4(W,X), s1(X,Y), s2(Y,Z)");

  CountingEngine::Planned first = engine.Plan(a);
  EXPECT_FALSE(first.cache_hit);
  CountingEngine::Planned second = engine.Plan(b);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.plan.get(), second.plan.get());  // literally shared

  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(PlanCacheTest, DifferentOptionsPlanSeparately) {
  CountingEngine engine;
  ConjunctiveQuery q = MakeQ1();
  PlannerOptions narrow;
  narrow.max_width = 1;
  PlannerOptions wide;
  wide.max_width = 2;
  EXPECT_FALSE(engine.Plan(q, narrow).cache_hit);
  EXPECT_FALSE(engine.Plan(q, wide).cache_hit);
  EXPECT_TRUE(engine.Plan(q, narrow).cache_hit);
  EXPECT_NE(engine.Plan(q, narrow).plan->strategy,
            PlanStrategy::kSharpHypertree);
  EXPECT_EQ(engine.Plan(q, wide).plan->strategy,
            PlanStrategy::kSharpHypertree);
}

TEST(PlanCacheTest, CachedCountsMatchColdCounts) {
  CountingEngine engine;
  ConjunctiveQuery q = MakeQ0();
  Q0DatabaseParams params;
  params.seed = 17;
  Database db = MakeQ0Database(params);
  CountResult cold = engine.Count(q, db);
  EXPECT_FALSE(cold.cache_hit);
  CountResult warm = engine.Count(q, db);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.count, warm.count);
  EXPECT_EQ(cold.method, warm.method);
}

TEST(PlanCacheTest, ShardCountCollapsesForSmallCapacities) {
  // Sharding spreads locks only when each shard can hold a useful number of
  // plans; small caches keep one shard and exact global LRU order.
  EXPECT_EQ(PlanCache::EffectiveShards(1, 8), 1u);
  EXPECT_EQ(PlanCache::EffectiveShards(2, 8), 1u);
  EXPECT_EQ(PlanCache::EffectiveShards(16, 8), 1u);
  EXPECT_EQ(PlanCache::EffectiveShards(64, 8), 4u);
  EXPECT_EQ(PlanCache::EffectiveShards(1024, 8), 8u);
  EXPECT_EQ(PlanCache::EffectiveShards(1024, 0), 1u);
  EXPECT_EQ(PlanCache::EffectiveShards(1024, 3), 3u);
}

TEST(PlanCacheTest, ShardedStatsAggregateAcrossShards) {
  PlanCache cache(/*capacity=*/1024, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8u);
  auto plan = std::make_shared<const CountingPlan>();
  for (int i = 0; i < 64; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(cache.Find(key), nullptr);
    cache.Insert(key, plan);
    EXPECT_EQ(cache.Find(key).get(), plan.get());
    EXPECT_EQ(cache.ShardOf(key), cache.ShardOf(key));  // stable
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 128u);
  EXPECT_EQ(stats.hits, 64u);
  EXPECT_EQ(stats.misses, 64u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.size, 64u);
  EXPECT_EQ(stats.shards.size(), 8u);
  std::size_t shard_sum = 0;
  std::size_t used_shards = 0;
  for (const PlanCache::ShardStats& s : stats.shards) {
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    shard_sum += s.size;
    if (s.lookups > 0) ++used_shards;
  }
  EXPECT_EQ(shard_sum, stats.size);
  EXPECT_GT(used_shards, 1u);  // 64 keys must not all hash to one shard
}

TEST(PlanCacheTest, LookupProvenanceSnapshotsTheServingShard) {
  CountingEngine engine;
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(6, 14, 2);
  CountResult cold = engine.Count(q, db);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.cache_shard_misses, 1u);
  EXPECT_EQ(cold.cache_shard_hits, 0u);
  CountResult warm = engine.Count(q, db);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.cache_shard, cold.cache_shard);
  EXPECT_EQ(warm.cache_shard_hits, 1u);
  EXPECT_EQ(warm.cache_shard_misses, 1u);
}

TEST(PlanCacheTest, CachedPlansSurviveEvictionPressure) {
  // capacity=1 thrash regression: two shapes alternately evict each other,
  // while a caller still holds the evicted plan. The shared_ptr must keep
  // the plan alive and executable, and the counts must stay exact.
  EngineOptions options;
  options.plan_cache_capacity = 1;
  CountingEngine engine(options);
  ConjunctiveQuery q1 = MakeQ1();
  Database db1 = MakeQ1Database(6, 14, 2);
  ConjunctiveQuery q2 = MakeQn1(3);
  Database db2 = MakeQn1RandomDatabase(6, 16, 5);
  const CountInt expected1 = engine.Count(q1, db1).count;

  // Hold q1's plan, then thrash it out of the cache repeatedly.
  CountingEngine::Planned held = engine.Plan(q1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(engine.Count(q2, db2).cache_hit);  // q1 just evicted it
    EXPECT_FALSE(engine.Count(q1, db1).cache_hit);
    EXPECT_EQ(engine.Count(q1, db1).count, expected1);
  }
  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_GT(stats.evictions, 10u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);

  // The long-evicted plan still executes correctly.
  EXPECT_EQ(ExecutePlan(*held.plan, db1).count, expected1);
}

TEST(PlanCacheTest, LruEvictionBoundsTheCache) {
  EngineOptions options;
  options.plan_cache_capacity = 2;
  CountingEngine engine(options);
  engine.Plan(MakeQn1(2));
  engine.Plan(MakeQn1(3));
  engine.Plan(MakeQn1(4));  // evicts MakeQn1(2)
  EXPECT_EQ(engine.cache_stats().size, 2u);
  EXPECT_EQ(engine.cache_stats().evictions, 1u);
  EXPECT_FALSE(engine.Plan(MakeQn1(2)).cache_hit);
  EXPECT_TRUE(engine.Plan(MakeQn1(4)).cache_hit);
}

// --- execution ---------------------------------------------------------------

TEST(ExecutorTest, AcyclicPs13CountsThePaperFamily) {
  for (int h : {2, 3, 5}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    CountResult result = CountByAcyclicPs13(q, db);
    EXPECT_EQ(result.count, CountInt{1} << h) << "h=" << h;
    EXPECT_EQ(result.method, "acyclic-ps13");
  }
}

TEST(ExecutorTest, AcyclicPs13AgreesWithBruteForce) {
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.force_acyclic = true;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    if (!IsAcyclic(q.BuildHypergraph())) continue;
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 10;
    dp.seed = seed * 911;
    Database db = MakeRandomDatabase(q, dp);
    ++counted;
    EXPECT_EQ(CountByAcyclicPs13(q, db).count, CountByBacktracking(q, db))
        << "seed " << seed;
  }
  EXPECT_GT(counted, 15);
}

TEST(ExecutorTest, EngineCountsQh2ViaPs13WhenWidthBudgetTooSmall) {
  const int h = 5;  // #-htw > 3, so the structural strategy fails
  CountingEngine engine;
  CountResult result = engine.Count(MakeQh2(h), MakeQh2Database(h));
  EXPECT_EQ(result.method, "acyclic-ps13");
  EXPECT_EQ(result.count, CountInt{1} << h);
}

TEST(ExecutorTest, EngineCountsHybridFamilyViaSharpB) {
  PlannerOptions options;
  options.max_width = 2;
  CountingEngine engine;
  CountResult result =
      engine.Count(MakeQbarh2(3), MakeQbarh2Database(3, 4), options);
  EXPECT_EQ(result.count, CountInt{1} << 3);
  EXPECT_EQ(result.method.rfind("#b-hypertree", 0), 0u) << result.method;
}

TEST(ExecutorTest, ProvenanceFieldsPopulated) {
  CountingEngine engine;
  ConjunctiveQuery q = MakeQ0();
  Q0DatabaseParams params;
  Database db = MakeQ0Database(params);
  CountResult cold = engine.Count(q, db);
  CountResult warm = engine.Count(q, db);
  EXPECT_GT(cold.planner_ms, 0.0);
  EXPECT_GT(cold.execute_ms, 0.0);
  // The cached call skips AnalyzeQuery and the width searches entirely.
  EXPECT_LT(warm.planner_ms, cold.planner_ms);
}

TEST(ExecutorTest, FilterProvenanceCountsMissHeavyProbesAndGatesOff) {
  ConjunctiveQuery q = Parse("Q(X,Z) <- r(X,Y), s(Y,Z)");
  Database db;
  Relation& r = db.DeclareRelation("r", 2);
  Relation& s = db.DeclareRelation("s", 2);
  // 380 of r's 400 join-key values are absent from s: the reducer's
  // semijoin over r is miss-heavy, the shape the filters absorb.
  for (Value i = 0; i < 400; ++i) r.AddRow({i, i + 1000});
  for (Value i = 0; i < 20; ++i) s.AddRow({i + 1000, i});

  CountingEngine filtered;
  CountResult with = filtered.Count(q, db);
  EXPECT_EQ(with.count, CountInt{20});
  EXPECT_GT(with.filter_hits, 300u);
  EXPECT_GE(with.filter_passes, 20u);

  EngineOptions off_options;
  off_options.enable_probe_filters = false;
  CountingEngine unfiltered(off_options);
  CountResult without = unfiltered.Count(q, db);
  EXPECT_EQ(without.count, CountInt{20});  // filters never change results
  EXPECT_EQ(without.filter_hits, 0u);
  EXPECT_EQ(without.filter_passes, 0u);
}

// --- cross-engine agreement ---------------------------------------------------
//
// Every strategy must produce the identical CountInt on whatever the random
// generator produces; the engines differ only in cost, never in answers.

TEST(CrossEngineAgreementTest, AllStrategiesAgreeOnRandomInstances) {
  CountingEngine engine;  // default: all strategies enabled
  PlannerOptions sharp_only;
  sharp_only.enable_acyclic_ps13 = false;
  sharp_only.enable_hybrid = false;
  PlannerOptions hybrid;
  hybrid.enable_acyclic_ps13 = false;
  hybrid.enable_hybrid = true;

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.num_relations = 3;
    qp.force_acyclic = (seed % 2 == 0);
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 10;
    dp.seed = seed * 7919;
    Database db = MakeRandomDatabase(q, dp);

    const CountInt expected = CountByBacktracking(q, db);
    EXPECT_EQ(CountByJoinProject(q, db), expected) << "seed " << seed;
    CountResult full = engine.Count(q, db);
    EXPECT_EQ(full.count, expected)
        << "seed " << seed << " via " << full.method;
    CountResult structural = engine.Count(q, db, sharp_only);
    EXPECT_EQ(structural.count, expected)
        << "seed " << seed << " via " << structural.method;
    CountResult hybrid_result = engine.Count(q, db, hybrid);
    EXPECT_EQ(hybrid_result.count, expected)
        << "seed " << seed << " via " << hybrid_result.method;
    if (IsAcyclic(q.BuildHypergraph()) &&
        q.free_vars().IsSubsetOf(q.AllVars())) {
      EXPECT_EQ(CountByAcyclicPs13(q, db).count, expected) << "seed " << seed;
    }
  }
}

TEST(CrossEngineAgreementTest, PaperQueriesAgreeAcrossStrategies) {
  CountingEngine engine;
  struct Case {
    ConjunctiveQuery q;
    Database db;
  };
  std::vector<Case> cases;
  Q0DatabaseParams q0p;
  q0p.seed = 3;
  cases.push_back({MakeQ0(), MakeQ0Database(q0p)});
  cases.push_back({MakeQ1(), MakeQ1Database(6, 14, 2)});
  cases.push_back({MakeQn1(4), MakeQn1RandomDatabase(6, 16, 5)});
  cases.push_back({MakeQh2(3), MakeQh2Database(3)});
  cases.push_back({MakeQbarh2(2), MakeQbarh2Database(2, 5)});

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CountInt expected = CountByBacktracking(cases[i].q, cases[i].db);
    CountResult result = engine.Count(cases[i].q, cases[i].db);
    EXPECT_EQ(result.count, expected)
        << "case " << i << " via " << result.method;
  }
}

}  // namespace
}  // namespace sharpcq
