#include <gtest/gtest.h>

#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "hybrid/degree.h"
#include "hybrid/degree_counting.h"
#include "hybrid/hybrid_counting.h"
#include "hybrid/optimal_decomp.h"
#include "hybrid/sharp_b.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

VarRelation MakeVarRel(IdSet vars, std::vector<std::vector<Value>> rows) {
  VarRelation r(std::move(vars));
  for (const auto& row : rows) r.rel().AddRow(std::span<const Value>(row));
  return r;
}

// --- degrees (Definition 6.1) -------------------------------------------------

TEST(DegreeTest, KeyGivesDegreeOne) {
  VarRelation r = MakeVarRel(IdSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(DegreeOfRelation(r, IdSet{0}), 1u);
}

TEST(DegreeTest, MultiExtensionCounted) {
  VarRelation r =
      MakeVarRel(IdSet{0, 1}, {{1, 10}, {1, 11}, {1, 12}, {2, 20}});
  EXPECT_EQ(DegreeOfRelation(r, IdSet{0}), 3u);
  // No free variables in the relation: the whole relation is one group.
  EXPECT_EQ(DegreeOfRelation(r, IdSet{9}), 4u);
  // All variables free: degree 1.
  EXPECT_EQ(DegreeOfRelation(r, IdSet{0, 1}), 1u);
  EXPECT_EQ(DegreeOfRelation(VarRelation(IdSet{0}), IdSet{0}), 0u);
}

TEST(DegreeTest, ExampleC2NaiveBoundIsM) {
  // Example C.2: bound(D_2, HD_2) = m = 2^h — the s-vertex covers no free
  // variable and its relation has m tuples.
  for (int h : {2, 3, 4}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    Hypertree naive = MakeQh2NaiveHypertree(q, h);
    EXPECT_EQ(HypertreeBound(q, db, naive),
              static_cast<std::size_t>(1) << h)
        << "h=" << h;
  }
}

TEST(DegreeTest, ExampleC2MergedBoundIsOne) {
  // Example C.2: bound(D_2, HD'_2) = 1 — X0 acts as a key after merging r
  // and s into one vertex.
  for (int h : {2, 3, 4}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    Hypertree merged = MakeQh2MergedHypertree(q, h);
    EXPECT_EQ(HypertreeBound(q, db, merged), 1u) << "h=" << h;
  }
}

// --- Theorem 6.2: PS13 over a hypertree --------------------------------------

TEST(Ps13HypertreeTest, BothQh2DecompositionsCountM) {
  for (int h : {2, 3}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    CountInt expected = CountInt{1} << h;
    Ps13Stats naive_stats, merged_stats;
    EXPECT_EQ(CountByPs13OnHypertree(q, db, MakeQh2NaiveHypertree(q, h),
                                     &naive_stats)
                  .count,
              expected);
    EXPECT_EQ(CountByPs13OnHypertree(q, db, MakeQh2MergedHypertree(q, h),
                                     &merged_stats)
                  .count,
              expected);
    // The naive decomposition pays the degree blowup: its #-relation sets
    // grow with m = 2^h, while the merged one stays at singleton sets.
    EXPECT_GT(naive_stats.max_set_size, merged_stats.max_set_size);
    EXPECT_EQ(merged_stats.max_set_size, 1u);
  }
}

TEST(Ps13HypertreeTest, AgreesWithBruteForceOnRandomInstances) {
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 9;
    dp.seed = seed * 31337;
    Database db = MakeRandomDatabase(q, dp);
    auto ht = FindHypertreeDecomposition(q, 3);
    if (!ht.has_value()) continue;
    ++counted;
    EXPECT_EQ(CountByPs13OnHypertree(q, db, *ht).count,
              CountByBacktracking(q, db))
        << "seed " << seed;
  }
  EXPECT_GT(counted, 12);
}

// --- Theorem C.5: D-optimal decompositions -----------------------------------

TEST(DOptimalTest, FindsBoundOneForQh2AtWidthTwo) {
  for (int h : {2, 3}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    auto result = FindDOptimalDecomposition(q, db, 2);
    ASSERT_TRUE(result.has_value()) << "h=" << h;
    EXPECT_EQ(result->bound, 1u) << "h=" << h;
    EXPECT_LE(result->hypertree.width(), 2);
  }
}

TEST(DOptimalTest, WidthOneCannotBeatBoundM) {
  // Over width-1 decompositions the degree value stays m (Example C.2:
  // "there is no width-1 hypertree decomposition with bound < m").
  const int h = 3;
  ConjunctiveQuery q = MakeQh2(h);
  Database db = MakeQh2Database(h);
  auto result = FindDOptimalDecomposition(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bound, static_cast<std::size_t>(1) << h);
}

TEST(DOptimalTest, ReturnsValidDecomposition) {
  ConjunctiveQuery q = MakeQ0();
  Q0DatabaseParams params;
  Database db = MakeQ0Database(params);
  auto result = FindDOptimalDecomposition(q, db, 2);
  ASSERT_TRUE(result.has_value());
  std::string why;
  EXPECT_TRUE(IsGeneralizedHypertreeDecomposition(result->hypertree, q, &why))
      << why;
}

// --- Definition 6.4 / Theorems 6.6, 6.7: #b decompositions -------------------

TEST(SharpBTest, QbarFamilyHasWidthTwoBoundOne) {
  // Example 6.5: for every h, (Qbar^h_2, Dbar^m_2) has a width-2
  // #1-generalized hypertree decomposition with S-bar = free ∪ {Y0..Yh}.
  for (int h : {2, 3}) {
    ConjunctiveQuery q = MakeQbarh2(h);
    Database db = MakeQbarh2Database(h, /*z_domain=*/6);
    auto d = FindSharpBDecomposition(q, db, 2);
    ASSERT_TRUE(d.has_value()) << "h=" << h;
    EXPECT_EQ(d->bound, 1u) << "h=" << h;
    EXPECT_LE(d->decomposition.width, 2) << "h=" << h;
    // The pseudo-free set extends the free variables by the Y block (Z
    // stays structural).
    EXPECT_TRUE(q.free_vars().IsSubsetOf(d->s_bar));
    EXPECT_FALSE(d->s_bar.Contains(q.VarByName("Z")));
  }
}

TEST(SharpBTest, PurelyStructuralCaseIsSubsumed) {
  // When the query already has small #-htw, S-bar = free(Q) works and the
  // search must not do worse than the structural method.
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(5, 12, 3);
  auto d = FindSharpBDecomposition(q, db, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_LE(d->decomposition.width, 2);
}

TEST(SharpBTest, HybridCountMatchesBruteForceOnQbar) {
  for (int h : {2, 3}) {
    for (int z : {2, 5}) {
      ConjunctiveQuery q = MakeQbarh2(h);
      Database db = MakeQbarh2Database(h, z);
      auto result = CountBySharpBDecomposition(q, db, 2);
      ASSERT_TRUE(result.has_value()) << "h=" << h << " z=" << z;
      EXPECT_EQ(result->count, CountInt{1} << h) << "h=" << h << " z=" << z;
      EXPECT_EQ(result->count, CountByBacktracking(q, db));
    }
  }
}

TEST(SharpBTest, HybridCountOnQh2UsesPseudoFreeYs) {
  // The acyclic Example C.1 family also benefits: treating the Y block as
  // pseudo-free yields bound 1 at width 2.
  for (int h : {2, 3}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    auto result = CountBySharpBDecomposition(q, db, 2);
    ASSERT_TRUE(result.has_value()) << "h=" << h;
    EXPECT_EQ(result->count, CountInt{1} << h) << "h=" << h;
  }
}

TEST(SharpBTest, AgreesWithBruteForceOnRandomInstances) {
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 5;
    qp.num_atoms = 4;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 8;
    dp.seed = seed * 104729;
    Database db = MakeRandomDatabase(q, dp);
    auto result = CountBySharpBDecomposition(q, db, 2);
    if (!result.has_value()) continue;
    ++counted;
    EXPECT_EQ(result->count, CountByBacktracking(q, db)) << "seed " << seed;
  }
  EXPECT_GT(counted, 8);
}

TEST(SharpBTest, BoundCapRejects) {
  // Qbar with structural-only width 2 is impossible (frontier clique), and
  // with a bound cap of 0 nothing qualifies... use max_b = 0 is meaningless
  // (bounds are >= 1); instead check that an impossible width fails.
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, 2);
  EXPECT_FALSE(FindSharpBDecomposition(q, db, 1).has_value());
}

}  // namespace
}  // namespace sharpcq
