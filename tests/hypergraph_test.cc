#include <gtest/gtest.h>

#include "gen/paper_queries.h"
#include "hypergraph/acyclic.h"
#include "hypergraph/hypergraph.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

TEST(HypergraphTest, NodesIncludeEdgeNodesAndIsolated) {
  Hypergraph h(IdSet{9}, {IdSet{1, 2}, IdSet{2, 3}});
  EXPECT_EQ(h.nodes(), (IdSet{1, 2, 3, 9}));
  h.AddEdge(IdSet{4});
  EXPECT_TRUE(h.nodes().Contains(4));
}

TEST(HypergraphTest, DedupAndSubsumedEdges) {
  Hypergraph h({}, {IdSet{1, 2}, IdSet{1, 2}, IdSet{1}, IdSet{2, 3}});
  h.DedupEdges();
  EXPECT_EQ(h.num_edges(), 3u);
  h.RemoveSubsumedEdges();
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_TRUE(HasEdge(h.edges(), IdSet{1, 2}));
  EXPECT_TRUE(HasEdge(h.edges(), IdSet{2, 3}));
}

TEST(HypergraphTest, Covers) {
  Hypergraph small({}, {IdSet{1, 2}, IdSet{3}});
  Hypergraph big({}, {IdSet{1, 2, 3}});
  EXPECT_TRUE(Covers(big, small));
  EXPECT_FALSE(Covers(small, big));
  EXPECT_TRUE(CoveredBySome(big.edges(), IdSet{2, 3}));
  EXPECT_FALSE(CoveredBySome(small.edges(), IdSet{1, 3}));
}

// Example 1.1 / Figure 1(a): the hypergraph of Q0.
class Q0HypergraphTest : public ::testing::Test {
 protected:
  Q0HypergraphTest() : q_(MakeQ0()), h_(q_.BuildHypergraph()) {}
  ConjunctiveQuery q_;
  Hypergraph h_;
};

TEST_F(Q0HypergraphTest, ComponentsAfterRemovingFreeVariables) {
  // Removing {A,B,C} splits Q0's hypergraph into {I}, {E}, {D,F,G,H}
  // (Section 1.2).
  WComponents comps = ComputeWComponents(h_, q_.free_vars());
  ASSERT_EQ(comps.components.size(), 3u);
  EXPECT_TRUE(HasEdge(comps.components, VarsOf(q_, {"I"})));
  EXPECT_TRUE(HasEdge(comps.components, VarsOf(q_, {"E"})));
  EXPECT_TRUE(HasEdge(comps.components, VarsOf(q_, {"D", "F", "G", "H"})));
}

TEST_F(Q0HypergraphTest, FrontiersOfSection12) {
  // Fr(I) = {A,B}; Fr(E) = {B}; Fr of D,F,G,H = {B,C} (Section 1.2).
  IdSet free = q_.free_vars();
  EXPECT_EQ(Frontier(h_, q_.VarByName("I"), free), VarsOf(q_, {"A", "B"}));
  EXPECT_EQ(Frontier(h_, q_.VarByName("E"), free), VarsOf(q_, {"B"}));
  for (const char* v : {"D", "F", "G", "H"}) {
    EXPECT_EQ(Frontier(h_, q_.VarByName(v), free), VarsOf(q_, {"B", "C"}))
        << v;
  }
  // Frontier of a free variable is empty.
  EXPECT_TRUE(Frontier(h_, q_.VarByName("A"), free).empty());
}

TEST_F(Q0HypergraphTest, Example32Frontiers) {
  // Example 3.2: Fr(A, {D,E,G}) = {D,E} and Fr(H, {D,E,G}) = {D,G}.
  IdSet w = VarsOf(q_, {"D", "E", "G"});
  EXPECT_EQ(Frontier(h_, q_.VarByName("A"), w), VarsOf(q_, {"D", "E"}));
  EXPECT_EQ(Frontier(h_, q_.VarByName("H"), w), VarsOf(q_, {"D", "G"}));
}

TEST_F(Q0HypergraphTest, FrontierHypergraphOfFigure1b) {
  // FH(Q0, {A,B,C}) has hyperedges {A,B}, {B}, {B,C} (Figure 1(b); no edge
  // of HQ0 lies inside the free variables).
  Hypergraph fh = FrontierHypergraph(h_, q_.free_vars());
  std::vector<IdSet> expected = {VarsOf(q_, {"A", "B"}), VarsOf(q_, {"B"}),
                                 VarsOf(q_, {"B", "C"})};
  EXPECT_EQ(SortedEdges(fh.edges()), SortedEdges(expected));
}

TEST_F(Q0HypergraphTest, PseudoFreeDShrinksFrontiers) {
  // Example 1.5 / Figure 5: with D treated as free, every frontier edge is
  // a subset of an original hyperedge.
  IdSet w = Union(q_.free_vars(), VarsOf(q_, {"D"}));
  Hypergraph fh = FrontierHypergraph(h_, w);
  for (const IdSet& e : fh.edges()) {
    EXPECT_TRUE(CoveredBySome(h_.edges(), e)) << e.ToString();
  }
}

TEST(FrontierHypergraphTest, EdgesInsideWAreKept) {
  // An edge fully inside W is an FH edge (Definition 3.3).
  Hypergraph h({}, {IdSet{0, 1}, IdSet{1, 2}});
  Hypergraph fh = FrontierHypergraph(h, IdSet{0, 1});
  EXPECT_TRUE(HasEdge(fh.edges(), IdSet{0, 1}));
  // Frontier of 2 is {1}.
  EXPECT_TRUE(HasEdge(fh.edges(), IdSet{1}));
}

TEST(PrimalGraphTest, AdjacencyFromHyperedges) {
  Hypergraph h({}, {IdSet{0, 1, 2}, IdSet{2, 3}});
  std::vector<IdSet> adj = PrimalGraphAdjacency(h);
  // nodes sorted: 0,1,2,3.
  EXPECT_EQ(adj[0], (IdSet{1, 2}));
  EXPECT_EQ(adj[2], (IdSet{0, 1, 3}));
  EXPECT_EQ(adj[3], (IdSet{2}));
}

TEST(ConnectedComponentsTest, SplitsDisconnectedHypergraph) {
  Hypergraph h(IdSet{9}, {IdSet{0, 1}, IdSet{2, 3}, IdSet{3, 4}});
  std::vector<IdSet> comps = ConnectedComponents(h);
  ASSERT_EQ(comps.size(), 3u);  // {0,1}, {2,3,4}, {9}
  EXPECT_TRUE(HasEdge(comps, IdSet{0, 1}));
  EXPECT_TRUE(HasEdge(comps, IdSet{2, 3, 4}));
  EXPECT_TRUE(HasEdge(comps, IdSet{9}));
}

// --- GYO acyclicity ---------------------------------------------------------

TEST(AcyclicTest, SingleEdgeIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(std::vector<IdSet>{IdSet{0, 1, 2}}));
}

TEST(AcyclicTest, PathIsAcyclic) {
  EXPECT_TRUE(IsAcyclic(std::vector<IdSet>{IdSet{0, 1}, IdSet{1, 2},
                                           IdSet{2, 3}}));
}

TEST(AcyclicTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAcyclic(std::vector<IdSet>{IdSet{0, 1}, IdSet{1, 2},
                                            IdSet{0, 2}}));
}

TEST(AcyclicTest, TriangleWithCoveringEdgeIsAcyclic) {
  // Alpha-acyclicity: adding {0,1,2} absorbs the triangle.
  EXPECT_TRUE(IsAcyclic(std::vector<IdSet>{IdSet{0, 1}, IdSet{1, 2},
                                           IdSet{0, 2}, IdSet{0, 1, 2}}));
}

TEST(AcyclicTest, FourCycleIsCyclic) {
  EXPECT_FALSE(IsAcyclic(std::vector<IdSet>{IdSet{0, 1}, IdSet{1, 2},
                                            IdSet{2, 3}, IdSet{0, 3}}));
}

TEST(AcyclicTest, Q0IsCyclic) {
  ConjunctiveQuery q = MakeQ0();
  EXPECT_FALSE(IsAcyclic(q.BuildHypergraph()));
}

TEST(AcyclicTest, Qh2IsAcyclic) {
  // Example C.1: Q^h_2 is acyclic.
  ConjunctiveQuery q = MakeQh2(4);
  EXPECT_TRUE(IsAcyclic(q.BuildHypergraph()));
}

TEST(AcyclicTest, DisconnectedAcyclicHasJoinForestStitched) {
  std::vector<IdSet> edges = {IdSet{0, 1}, IdSet{5, 6}};
  auto tree = BuildJoinTree(edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(SatisfiesRunningIntersection(edges, *tree));
}

TEST(AcyclicTest, JoinTreeSatisfiesRunningIntersection) {
  std::vector<IdSet> edges = {IdSet{0, 1, 2}, IdSet{1, 2, 3}, IdSet{2, 3, 4},
                              IdSet{0, 5}};
  auto tree = BuildJoinTree(edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(SatisfiesRunningIntersection(edges, *tree));
}

TEST(AcyclicTest, DuplicateEdgesHandled) {
  std::vector<IdSet> edges = {IdSet{0, 1}, IdSet{0, 1}, IdSet{1, 2}};
  auto tree = BuildJoinTree(edges);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(SatisfiesRunningIntersection(edges, *tree));
}

TEST(AcyclicTest, EmptyEdgeSet) {
  EXPECT_TRUE(IsAcyclic(std::vector<IdSet>{}));
}

TEST(RunningIntersectionTest, DetectsViolation) {
  // Bags {0,1} - {2} - {0,3}: variable 0 occurs in two disconnected bags.
  std::vector<IdSet> bags = {IdSet{0, 1}, IdSet{2}, IdSet{0, 3}};
  TreeShape shape = TreeShape::FromParents({-1, 0, 1});
  EXPECT_FALSE(SatisfiesRunningIntersection(bags, shape));
  // Moving variable 0 into the middle bag fixes it.
  bags[1] = IdSet{0, 2};
  EXPECT_TRUE(SatisfiesRunningIntersection(bags, shape));
}

TEST(TreeShapeTest, TopoOrderParentsFirst) {
  TreeShape t = TreeShape::FromParents({-1, 0, 0, 1});
  std::vector<int> order = t.TopoOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  // Every node appears after its parent.
  std::vector<int> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int v = 1; v < 4; ++v) {
    EXPECT_LT(pos[static_cast<std::size_t>(t.parent[static_cast<std::size_t>(
                  v)])],
              pos[static_cast<std::size_t>(v)]);
  }
}

}  // namespace
}  // namespace sharpcq
