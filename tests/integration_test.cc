// End-to-end integration: text query -> parse -> decompose -> count /
// enumerate, including the query-language corners (constants, self-joins,
// repeated variables) that the unit suites cover only in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/enumerate_answers.h"
#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "hybrid/hybrid_counting.h"
#include "query/parser.h"
#include "solver/hom_target.h"
#include "solver/homomorphism.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

Database SocialDb() {
  Database db;
  // follows(a, b), lives(person, city), age(person, years)
  for (auto [a, b] : std::vector<std::pair<Value, Value>>{
           {1, 2}, {2, 3}, {3, 1}, {1, 3}, {4, 1}, {2, 4}}) {
    db.AddTuple("follows", {a, b});
  }
  db.AddTuple("lives", {1, 100});
  db.AddTuple("lives", {2, 100});
  db.AddTuple("lives", {3, 101});
  db.AddTuple("lives", {4, 100});
  for (Value p = 1; p <= 4; ++p) db.AddTuple("age", {p, 20 + p});
  return db;
}

CountInt CountText(const std::string& text, const Database& db) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value()) << text;
  CountResult result = CountAnswers(*q, db);
  CountInt brute = CountByBacktracking(*q, db);
  EXPECT_EQ(result.count, brute) << text << " via " << result.method;
  return result.count;
}

TEST(IntegrationTest, SimpleProjection) {
  // People who follow somebody living in city 100.
  EXPECT_EQ(CountText("Q(X) <- follows(X,Y), lives(Y,100)", SocialDb()),
            CountInt{4});
}

TEST(IntegrationTest, ConstantsInAtoms) {
  EXPECT_EQ(CountText("Q(X) <- lives(X,100)", SocialDb()), CountInt{3});
  EXPECT_EQ(CountText("Q(X) <- lives(X,999)", SocialDb()), CountInt{0});
}

TEST(IntegrationTest, SelfJoinTriangles) {
  // Directed triangles through vertex X (all three roles free).
  CountInt triangles = CountText(
      "Q(X,Y,Z) <- follows(X,Y), follows(Y,Z), follows(Z,X)", SocialDb());
  EXPECT_EQ(triangles, CountInt{6});  // 1-2-3, 1-3-? ... verified vs brute
}

TEST(IntegrationTest, RepeatedVariableInAtom) {
  Database db = SocialDb();
  db.AddTuple("follows", {5, 5});  // a self-loop
  EXPECT_EQ(CountText("Q(X) <- follows(X,X)", db), CountInt{1});
}

TEST(IntegrationTest, BooleanQueries) {
  EXPECT_EQ(CountText("Q() <- follows(X,Y), follows(Y,X)", SocialDb()),
            CountInt{1});  // (1,3)/(3,1) is a 2-cycle
  EXPECT_EQ(
      CountText("Q() <- follows(X,Y), follows(Y,Z), follows(Z,X)", SocialDb()),
      CountInt{1});
  // A relation symbol with no matching tuples at all.
  Database db = SocialDb();
  db.DeclareRelation("blocked", 2);
  EXPECT_EQ(CountText("Q() <- follows(X,Y), blocked(Y,X)", db), CountInt{0});
}

TEST(IntegrationTest, ExistentialChainWithConstants) {
  EXPECT_EQ(CountText("Q(X) <- follows(X,Y), follows(Y,Z), lives(Z,101)",
                      SocialDb()),
            CountByBacktracking(
                *ParseQuery("Q(X) <- follows(X,Y), follows(Y,Z), lives(Z,101)"),
                SocialDb()));
}

TEST(IntegrationTest, HybridFacadeAgreesEverywhere) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 9;
    dp.seed = seed * 271;
    Database db = MakeRandomDatabase(q, dp);
    CountResult result = CountAnswersWithHybrid(q, db);
    EXPECT_EQ(result.count, CountByBacktracking(q, db))
        << "seed " << seed << " via " << result.method;
  }
}

TEST(IntegrationTest, HybridFacadeUsesHybridOnQbar) {
  ConjunctiveQuery q = MakeQbarh2(3);
  Database db = MakeQbarh2Database(3, 4);
  CountOptions options;
  options.max_width = 2;  // structural fails at 2; hybrid succeeds
  CountResult result = CountAnswersWithHybrid(q, db, options);
  EXPECT_EQ(result.count, CountInt{1} << 3);
  EXPECT_EQ(result.method.rfind("#b-hypertree", 0), 0u) << result.method;
}

// --- enumeration (GS13 companion) ---------------------------------------------

TEST(EnumerationAnswersTest, MatchesCountOnPaperQueries) {
  ConjunctiveQuery q = MakeQ0();
  Q0DatabaseParams params;
  params.seed = 5;
  Database db = MakeQ0Database(params);
  auto answers = EnumerateAnswersToVector(q, db, 2);
  ASSERT_TRUE(answers.has_value());
  auto count = CountBySharpHypertree(q, db, 2);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(static_cast<CountInt>(answers->size()), count->count);
  // Distinctness.
  std::set<std::vector<Value>> unique(answers->begin(), answers->end());
  EXPECT_EQ(unique.size(), answers->size());
}

TEST(EnumerationAnswersTest, EveryAnswerSatisfiesTheQuery) {
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(5, 12, 77);
  auto answers = EnumerateAnswersToVector(q, db, 2);
  ASSERT_TRUE(answers.has_value());
  DatabaseTarget target(db);
  std::vector<std::uint32_t> free(q.free_vars().begin(), q.free_vars().end());
  for (const auto& answer : *answers) {
    Homomorphism forced;
    for (std::size_t i = 0; i < free.size(); ++i) {
      forced[free[i]] = answer[i];
    }
    EXPECT_TRUE(HomomorphismExists(q, target, forced));
  }
}

TEST(EnumerationAnswersTest, LimitStopsEarly) {
  ConjunctiveQuery q = MakeQn1(3);
  Database db = MakeQn1CycleDatabase(10);  // 10 answers
  auto answers = EnumerateAnswersToVector(q, db, 1, /*limit=*/4);
  ASSERT_TRUE(answers.has_value());
  EXPECT_EQ(answers->size(), 4u);
}

TEST(EnumerationAnswersTest, WidthBudgetRespected) {
  EXPECT_FALSE(
      EnumerateAnswersToVector(MakeQ1(), MakeQ1Database(4, 8, 1), 1)
          .has_value());
}

TEST(EnumerationAnswersTest, AgreesWithBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 4;
    qp.max_arity = 2;
    qp.num_free = 3;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 4;
    dp.tuples_per_relation = 10;
    dp.seed = seed * 37;
    Database db = MakeRandomDatabase(q, dp);
    auto answers = EnumerateAnswersToVector(q, db, 3);
    if (!answers.has_value()) continue;
    EXPECT_EQ(static_cast<CountInt>(answers->size()),
              CountByBacktracking(q, db))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace sharpcq
