// Deeper invariants: facts the theory guarantees across *choices* the
// implementation makes (which core, which decomposition, which engine), and
// edge cases around the query language.

#include <gtest/gtest.h>

#include "core/materialize.h"
#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "count/join_tree_instance.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "hybrid/degree.h"
#include "solver/core.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

// Every substructure core must lead to the same count (they are all
// equivalent to Q); Example 3.5's point is that some cores fail against
// restricted views, not that they disagree.
TEST(CrossCoreInvariantTest, AllQ0CoresCountTheSame) {
  ConjunctiveQuery q = MakeQ0();
  ViewSet views = BuildVk(q, 2);
  for (std::uint64_t seed : {1u, 4u, 9u}) {
    Q0DatabaseParams params;
    params.seed = seed;
    Database db = MakeQ0Database(params);
    CountInt expected = CountByBacktracking(q, db);
    int cores_tried = 0;
    for (const ConjunctiveQuery& core : EnumerateColoredCores(q, 8)) {
      std::vector<IdSet> cover = SharpCoverEdges(core, q.free_vars());
      auto projection = FindTreeProjection(cover, views);
      ASSERT_TRUE(projection.has_value());
      SharpDecomposition d;
      d.core = core;
      d.tree = projection->tree;
      d.views = views;
      d.width = d.tree.Width(views);
      EXPECT_EQ(CountViaSharpDecomposition(q, db, d).count, expected)
          << "core " << cores_tried << " seed " << seed;
      ++cores_tried;
    }
    EXPECT_EQ(cores_tried, 2);
  }
}

TEST(CrossCoreInvariantTest, RandomQueriesAllCoresCountTheSame) {
  int families = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 5;
    qp.num_atoms = 5;
    qp.max_arity = 2;
    qp.num_free = 2;
    qp.num_relations = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    std::vector<ConjunctiveQuery> cores = EnumerateColoredCores(q, 4);
    if (cores.size() < 2) continue;
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 8;
    dp.seed = seed * 11;
    Database db = MakeRandomDatabase(q, dp);
    CountInt expected = CountByBacktracking(q, db);
    ViewSet views = BuildVk(q, 3);
    bool counted_some = false;
    for (const ConjunctiveQuery& core : cores) {
      std::vector<IdSet> cover = SharpCoverEdges(core, q.free_vars());
      auto projection = FindTreeProjection(cover, views);
      if (!projection.has_value()) continue;
      SharpDecomposition d;
      d.core = core;
      d.tree = projection->tree;
      d.views = views;
      d.width = d.tree.Width(views);
      EXPECT_EQ(CountViaSharpDecomposition(q, db, d).count, expected)
          << "seed " << seed;
      counted_some = true;
    }
    families += counted_some ? 1 : 0;
  }
  EXPECT_GT(families, 2);
}

// pi_free(core) == pi_free(Q) on every database — the colored-core
// guarantee (GS13) the whole pipeline rests on.
TEST(CrossCoreInvariantTest, CorePreservesAnswers) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 5;
    qp.num_atoms = 5;
    qp.max_arity = 2;
    qp.num_free = 2;
    qp.num_relations = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    ConjunctiveQuery core = ComputeColoredCore(q);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 9;
    dp.seed = seed * 101;
    Database db = MakeRandomDatabase(q, dp);
    EXPECT_EQ(CountByBacktracking(core, db), CountByBacktracking(q, db))
        << "seed " << seed << " core " << core.DebugString();
  }
}

// The Theorem 6.2 stats invariant: after materializing any complete
// decomposition, PS13's set sizes stay within the degree bound.
TEST(DegreeInvariantTest, BoundDominatesAnswerMultiplicity) {
  for (int h : {2, 3, 4}) {
    ConjunctiveQuery q = MakeQh2(h);
    Database db = MakeQh2Database(h);
    Hypertree merged = MakeQh2MergedHypertree(q, h);
    JoinTreeInstance instance = MaterializeHypertree(q, db, merged);
    // bound = 1 means every answer has a unique witness: the full join and
    // the answer count coincide.
    ASSERT_EQ(BoundOfInstance(instance, q.free_vars()), 1u);
    ASSERT_TRUE(FullReduce(&instance));
    EXPECT_EQ(CountFullJoin(RestrictToVars(instance, instance.AllVars())),
              CountFullJoin(instance));
  }
}

// --- language edge cases ------------------------------------------------------

TEST(EdgeCaseTest, FreeVariableInSingleUnaryAtom) {
  ConjunctiveQuery q;
  q.AddAtomVars("u", {"X"});
  q.AddAtomVars("r", {"X", "Y"});
  q.SetFreeByName({"X"});
  Database db;
  db.AddTuple("u", {1});
  db.AddTuple("u", {2});
  db.AddTuple("u", {3});
  db.AddTuple("r", {1, 5});
  db.AddTuple("r", {3, 6});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{2});
}

TEST(EdgeCaseTest, DuplicateAtomsCollapseInCore) {
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.AddAtomVars("r", {"X", "Y"});
  q.SetFreeByName({"X"});
  ConjunctiveQuery core = ComputeColoredCore(q);
  EXPECT_EQ(core.NumAtoms(), 1u);
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {4, 2});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{2});
}

TEST(EdgeCaseTest, NegativeValuesFlowThrough) {
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.AddAtomVars("s", {"Y"});
  q.SetFreeByName({"X"});
  Database db;
  db.AddTuple("r", {-5, -6});
  db.AddTuple("r", {-5, 7});
  db.AddTuple("r", {8, -6});
  db.AddTuple("s", {-6});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{2});  // X in {-5, 8}
  EXPECT_EQ(result->count, CountByBacktracking(q, db));
}

TEST(EdgeCaseTest, AllVariablesFreeReducesToFullCount) {
  // No existential variables: FH adds only edges inside free(Q);
  // counting equals the plain join count.
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.AddAtomVars("r", {"Y", "Z"});
  q.SetFreeByName({"X", "Y", "Z"});
  Database db = MakeQn1CycleDatabase(7);
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{7});
}

TEST(EdgeCaseTest, CartesianProductQueries) {
  // Two disconnected components multiply.
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X"});
  q.AddAtomVars("s", {"Y"});
  q.SetFreeByName({"X", "Y"});
  Database db;
  db.AddTuple("r", {1});
  db.AddTuple("r", {2});
  db.AddTuple("s", {10});
  db.AddTuple("s", {20});
  db.AddTuple("s", {30});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{6});
  // And with one side existential, only the nonempty check remains.
  ConjunctiveQuery q2 = q.WithFree(VarsOf(q, {"X"}));
  auto result2 = CountBySharpHypertree(q2, db, 1);
  ASSERT_TRUE(result2.has_value());
  EXPECT_EQ(result2->count, CountInt{2});
}

TEST(EdgeCaseTest, WideAtomsCountedThroughWidthOne) {
  // A single 5-ary atom with mixed free/existential variables.
  ConjunctiveQuery q;
  q.AddAtomVars("w", {"A", "B", "C", "D", "E"});
  q.SetFreeByName({"A", "C"});
  Database db;
  db.AddTuple("w", {1, 2, 3, 4, 5});
  db.AddTuple("w", {1, 9, 3, 8, 7});
  db.AddTuple("w", {1, 2, 4, 4, 5});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{2});  // (1,3) and (1,4)
}

}  // namespace
}  // namespace sharpcq
