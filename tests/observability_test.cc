// The observability layer (ISSUE 9): metrics histogram bucket math and
// concurrent counter correctness, the trace span tree (nesting, notes,
// serialize -> parse round-trip), the null-sink guarantee that untraced
// spans never allocate (checked with a counting operator new), the
// slow-query ring buffer's eviction and deterministic sampling, and the
// surfaced ends: an engine Count threading a Trace through the planner and
// strategies, and an in-process daemon serving `metrics` in parseable
// Prometheus text plus `count trace=1` bodies that ParseTraceNode accepts.
// Runs under both sanitizers in CI (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "count/enumeration.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "storage/catalog.h"
#include "util/metrics.h"
#include "util/trace.h"

// --- counting allocator ------------------------------------------------------
// Global operator new/delete replacements that tally every allocation in
// this binary, so the null-sink test below can assert an exact zero over a
// region of code. Routed through malloc/free so sanitizer interception
// still sees a consistent pairing.

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sharpcq {
namespace {

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

// --- histogram bucket math ---------------------------------------------------

TEST(HistogramTest, BucketIndexIsBitWidthOfMicros) {
  // Bucket 0 is reserved for sub-microsecond samples; bucket i >= 1 holds
  // [2^(i-1), 2^i) microseconds, i.e. the bit width of the sample.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1000), 10u);   // 1ms
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything past the last boundary is absorbed by the final bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundsDoubleAndEndAtInfinity) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(0), 0.001);   // 1us
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(10), 1.024);  // ~1ms
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(11), 2.048);
  for (std::size_t i = 0; i + 2 < Histogram::kBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperMs(i + 1),
                     Histogram::BucketUpperMs(i) * 2.0);
  }
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperMs(Histogram::kBuckets - 1)));
}

TEST(HistogramTest, RecordSnapshotAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().PercentileMs(99), 0.0);

  // 90 fast samples (~1ms -> bucket 10) and 10 slow ones (~100ms ->
  // bit_width(100000) = 17).
  for (int i = 0; i < 90; ++i) h.Record(1.0);
  for (int i = 0; i < 10; ++i) h.Record(100.0);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum_ms, 90.0 + 1000.0, 1e-9);
  EXPECT_EQ(snap.buckets[10], 90u);
  EXPECT_EQ(snap.buckets[17], 10u);
  // Percentiles report the containing bucket's upper bound.
  EXPECT_DOUBLE_EQ(snap.PercentileMs(50), Histogram::BucketUpperMs(10));
  EXPECT_DOUBLE_EQ(snap.PercentileMs(90), Histogram::BucketUpperMs(10));
  EXPECT_DOUBLE_EQ(snap.PercentileMs(99), Histogram::BucketUpperMs(17));

  // Negative and sub-microsecond samples land in bucket 0.
  Histogram tiny;
  tiny.Record(-5.0);
  tiny.Record(0.0005);
  EXPECT_EQ(tiny.snapshot().buckets[0], 2u);
}

TEST(HistogramTest, PrometheusExpositionIsCumulativeAndTruncated) {
  Histogram h;
  for (int i = 0; i < 3; ++i) h.Record(1.0);  // bucket 10
  std::string out;
  h.snapshot().AppendPrometheus(&out, "t_lat_ms", "{command=\"count\"}");
  // Cumulative series: empty buckets before the samples render 0, the
  // bucket holding them renders the full count, and the tail is truncated
  // straight to the mandatory +Inf bucket.
  EXPECT_NE(out.find("t_lat_ms_bucket{command=\"count\",le=\"0.001\"} 0\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("t_lat_ms_bucket{command=\"count\",le=\"1.024\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("le=\"2.048\""), std::string::npos) << out;
  EXPECT_NE(out.find("t_lat_ms_bucket{command=\"count\",le=\"+Inf\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("t_lat_ms_sum{command=\"count\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("t_lat_ms_count{command=\"count\"} 3\n"),
            std::string::npos)
      << out;
}

// --- counters ----------------------------------------------------------------

TEST(CounterTest, ConcurrentStripedAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, DisabledMetricsDropEveryWrite) {
  Counter counter;
  Histogram histogram;
  counter.Add(5);
  SetMetricsEnabled(false);
  counter.Add(1000);
  histogram.Record(50.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 5u);
  EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(RegistryTest, SameNameAndLabelsReturnSameInstance) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter& a = registry.GetCounter("sharpcq_test_registry_total");
  Counter& b = registry.GetCounter("sharpcq_test_registry_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled =
      registry.GetCounter("sharpcq_test_registry_total", "{kind=\"x\"}");
  EXPECT_NE(&a, &labeled);

  a.Add(3);
  labeled.Add(4);
  registry.GetGauge("sharpcq_test_registry_depth").Set(-2);
  std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE sharpcq_test_registry_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("sharpcq_test_registry_total 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("sharpcq_test_registry_total{kind=\"x\"} 4\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("sharpcq_test_registry_depth -2\n"), std::string::npos)
      << out;
}

// --- trace spans -------------------------------------------------------------

const TraceNode* FindChild(const TraceNode& node, std::string_view name) {
  for (const auto& child : node.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

const std::string* FindNote(const TraceNode& node, std::string_view key) {
  for (const auto& [k, v] : node.notes) {
    if (k == key) return &v;
  }
  return nullptr;
}

TEST(TraceTest, SpansNestUnderTheScopeAndRecordNotes) {
  Trace trace;
  {
    TraceScope scope(&trace);
    ASSERT_EQ(CurrentTrace(), &trace);
    TraceSpan outer("plan");
    outer.Note("strategy", "sharp-hypertree");
    outer.NoteCount("atoms", 4);
    outer.NoteMs("elapsed", 1.5);
    {
      TraceSpan inner("width_search");
      inner.NoteCount("k", 2);
    }
    TraceSpan sibling("install");
    (void)sibling;
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
  trace.Finish();

  const TraceNode& root = trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode* plan = FindChild(root, "plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(FindNote(*plan, "strategy"), nullptr);
  EXPECT_EQ(*FindNote(*plan, "strategy"), "sharp-hypertree");
  EXPECT_EQ(*FindNote(*plan, "atoms"), "4");
  EXPECT_EQ(*FindNote(*plan, "elapsed"), "1.500");
  ASSERT_EQ(plan->children.size(), 2u);  // inner + sibling both under plan
  EXPECT_NE(FindChild(*plan, "width_search"), nullptr);
  EXPECT_NE(FindChild(*plan, "install"), nullptr);
  EXPECT_GE(root.duration_ms, plan->duration_ms);
}

TEST(TraceTest, SerializeParseRoundTripIsIdentity) {
  Trace trace;
  {
    TraceScope scope(&trace);
    TraceSpan a("phase one");  // space in the name exercises escaping
    a.Note("path", "a\\b c");
    a.Note("multi", "line\none\ttab");
    TraceSpan b("inner");
    b.NoteCount("rows", 42);
  }
  trace.Finish();

  const std::string wire = SerializeTraceNode(trace.root());
  EXPECT_EQ(wire.back(), '\n');
  std::string error;
  auto parsed = ParseTraceNode(wire, &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->name, "query");
  const TraceNode* a = FindChild(*parsed, "phase one");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*FindNote(*a, "path"), "a\\b c");
  EXPECT_EQ(*FindNote(*a, "multi"), "line\none\ttab");
  ASSERT_NE(FindChild(*a, "inner"), nullptr);
  EXPECT_EQ(*FindNote(*FindChild(*a, "inner"), "rows"), "42");
  // Re-serializing the parsed tree reproduces the wire text exactly.
  EXPECT_EQ(SerializeTraceNode(*parsed), wire);
}

TEST(TraceTest, ParseRejectsMalformedTrees) {
  std::string error;
  EXPECT_EQ(ParseTraceNode("", &error), nullptr);
  EXPECT_EQ(ParseTraceNode("a +0.0ms\n", &error), nullptr);  // missing field
  EXPECT_EQ(ParseTraceNode(" a +0.0ms 1.0ms\n", &error), nullptr);  // odd
  EXPECT_EQ(ParseTraceNode("a +0.0ms 1.0ms\n    b +0.0ms 1.0ms\n", &error),
            nullptr);  // depth jumps past its parent
  EXPECT_EQ(ParseTraceNode("a +0.0ms 1.0ms\nb +0.0ms 1.0ms\n", &error),
            nullptr);  // two roots
  EXPECT_EQ(ParseTraceNode("a +0.0ms 1.0ms badnote\n", &error), nullptr);
}

TEST(TraceTest, UntracedSpansNeverAllocate) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  // Warm up thread-local machinery outside the measured region.
  { TraceSpan warmup("w"); }
  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("materialize_bags");
    span.Note("regime", "priority");
    span.NoteCount("relaxations", 17);
    span.NoteMs("elapsed", 3.25);
    TraceSpan inner("count_full_join");
    inner.NoteCount("nodes", 9);
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "untraced TraceSpan must be the null sink";
}

// --- slow-query log ----------------------------------------------------------

TEST(SlowQueryLogTest, RingEvictsOldestPastCapacity) {
  SlowQueryLog log({/*capacity=*/4, /*threshold_ms=*/0.0,
                    /*sample_every=*/1});
  ASSERT_TRUE(log.enabled());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.ShouldRecord(5.0));
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    log.Record(std::move(entry));
  }
  std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().sequence, 6u);  // oldest surviving
  EXPECT_EQ(entries.front().query, "q6");
  EXPECT_EQ(entries.back().sequence, 9u);
  EXPECT_EQ(log.total_slow(), 10u);
}

TEST(SlowQueryLogTest, ThresholdAndSamplingAreDeterministic) {
  SlowQueryLog log({/*capacity=*/8, /*threshold_ms=*/10.0,
                    /*sample_every=*/3});
  EXPECT_FALSE(log.ShouldRecord(9.99));  // under threshold: not even counted
  EXPECT_EQ(log.total_slow(), 0u);
  int recorded = 0;
  for (int i = 0; i < 9; ++i) {
    if (log.ShouldRecord(10.0)) ++recorded;
  }
  EXPECT_EQ(recorded, 3);  // ordinals 0, 3, 6
  EXPECT_EQ(log.total_slow(), 9u);

  SlowQueryLog disabled({/*capacity=*/8, /*threshold_ms=*/-1.0,
                         /*sample_every=*/1});
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldRecord(1e9));

  SlowQueryLog zero_capacity({/*capacity=*/0, /*threshold_ms=*/0.0,
                              /*sample_every=*/1});
  EXPECT_FALSE(zero_capacity.enabled());
}

// --- engine trace-through ----------------------------------------------------

Database MakeChainDatabase() {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {2, 3});
  db.AddTuple("r", {3, 4});
  db.AddTuple("s", {2, 5});
  db.AddTuple("s", {3, 6});
  db.AddTuple("s", {4, 7});
  return db;
}

TEST(EngineTraceTest, CountRecordsPlannerAndExecutionSpans) {
  CountingEngine engine;
  Database db = MakeChainDatabase();
  Trace trace;
  CountResult result = engine.Count(Parse("Q(X,Y) <- r(X,Z), s(Z,Y)"), db,
                                    PlannerOptions{}, nullptr, &trace);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.count, CountInt{3});
  EXPECT_EQ(CurrentTrace(), nullptr);  // scope restored

  const TraceNode& root = trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GT(root.duration_ms, 0.0);  // Finish() was called
  const TraceNode* profile = FindChild(root, "profile");
  const TraceNode* plan = FindChild(root, "plan");
  const TraceNode* execute = FindChild(root, "execute");
  ASSERT_NE(profile, nullptr);
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(execute, nullptr);
  ASSERT_NE(FindNote(*plan, "strategy"), nullptr);
  EXPECT_EQ(*FindNote(*plan, "strategy"), "sharp-hypertree");
  ASSERT_NE(FindNote(*plan, "cache"), nullptr);
  ASSERT_NE(FindNote(*execute, "method"), nullptr);
  EXPECT_EQ(*FindNote(*execute, "method"), result.method);
  EXPECT_EQ(*FindNote(*execute, "status"), "OK");
  // The strategy contributed nested spans under the execute phase.
  EXPECT_NE(FindChild(*execute, "materialize_bags"), nullptr);

  // A second traced count on the same engine sees the warm plan cache.
  Trace second;
  engine.Count(Parse("Q(X,Y) <- r(X,Z), s(Z,Y)"), db, PlannerOptions{},
               nullptr, &second);
  const TraceNode* second_plan = FindChild(second.root(), "plan");
  ASSERT_NE(second_plan, nullptr);
  EXPECT_EQ(*FindNote(*second_plan, "cache"), "hit");
}

TEST(EngineTraceTest, SlowQueryLogCapturesTracedCounts) {
  EngineOptions options;
  options.slow_query_threshold_ms = 0.0;  // everything is "slow"
  CountingEngine engine(options);
  Database db = MakeChainDatabase();
  Trace trace;
  engine.Count(Parse("Q(X) <- r(X,Y)"), db, PlannerOptions{}, nullptr,
               &trace);
  engine.Count(Parse("Q(X) <- s(X,Y)"), db);  // untraced

  std::vector<SlowQueryEntry> entries = engine.slow_query_log().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].query.empty());
  EXPECT_FALSE(entries[0].method.empty());
  EXPECT_FALSE(entries[0].wall_time.empty());
  // The traced call keeps its span tree; the untraced one records "".
  std::string error;
  ASSERT_NE(ParseTraceNode(entries[0].trace, &error), nullptr) << error;
  EXPECT_TRUE(entries[1].trace.empty());
}

// --- daemon exposition -------------------------------------------------------

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "sharpcq_obs_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

// Checks every non-comment line of a Prometheus text exposition has the
// `name{labels} value` shape with a numeric value, and returns the value
// of `series` (exact name + label match), or -1 when absent.
double ParseExposition(const std::string& text, const std::string& series) {
  double found = -1.0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    char* parse_end = nullptr;
    const std::string value_text = line.substr(space + 1);
    const double value = std::strtod(value_text.c_str(), &parse_end);
    EXPECT_EQ(parse_end, value_text.c_str() + value_text.size()) << line;
    if (name == series) found = value;
  }
  return found;
}

TEST(DaemonObservabilityTest, MetricsCommandServesParseableExposition) {
  DaemonOptions options;
  options.catalog_root = MakeScratchDir();
  options.catalog.engine.slow_query_threshold_ms = 0.0;
  {
    Catalog catalog(options.catalog_root);
    Status error;
    ASSERT_TRUE(
        catalog.Ingest("demo", MakeChainDatabase(), nullptr, &error)
            .has_value())
        << error;
  }
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", daemon.port(), &error)) << error;

  // One traced count: the response carries the serialized span tree.
  Request count;
  count.command = "count";
  count.args = {{"db", "demo"}, {"trace", "1"}};
  count.body = "Q(X,Y) <- r(X,Z), s(Z,Y)";
  auto counted = client.Call(count, &error);
  ASSERT_TRUE(counted.has_value()) << error;
  ASSERT_TRUE(counted->ok) << counted->code << " " << counted->message;
  EXPECT_EQ(*counted->Field("count"), "3");
  ASSERT_FALSE(counted->body.empty());
  auto tree = ParseTraceNode(counted->body, &error);
  ASSERT_NE(tree, nullptr) << error << "\n" << counted->body;
  EXPECT_EQ(tree->name, "query");
  EXPECT_NE(FindChild(*tree, "execute"), nullptr);

  // The scrape: well-formed exposition with this daemon's request totals.
  Request metrics;
  metrics.command = "metrics";
  auto scraped = client.Call(metrics, &error);
  ASSERT_TRUE(scraped.has_value()) << error;
  ASSERT_TRUE(scraped->ok) << scraped->code;
  const std::string& body = scraped->body;
  EXPECT_NE(body.find("# TYPE sharpcqd_requests_total counter\n"),
            std::string::npos);
  EXPECT_EQ(
      ParseExposition(body, "sharpcqd_requests_total{command=\"count\"}"),
      1.0)
      << body;
  EXPECT_EQ(
      ParseExposition(body, "sharpcqd_requests_total{command=\"metrics\"}"),
      1.0);
  EXPECT_EQ(ParseExposition(body, "sharpcqd_responses_total{result=\"ok\"}"),
            1.0);
  EXPECT_GE(ParseExposition(body, "sharpcqd_uptime_seconds"), 0.0);
  EXPECT_EQ(
      ParseExposition(
          body, "sharpcqd_request_latency_ms_count{command=\"count\"}"),
      1.0);
  // Process-wide engine families ride along in the same exposition.
  EXPECT_NE(body.find("# TYPE sharpcq_counts_total counter\n"),
            std::string::npos);

  // Per-command totals in `status`, and the slow-query ring via `inspect`.
  Request status;
  status.command = "status";
  auto state = client.Call(status, &error);
  ASSERT_TRUE(state.has_value()) << error;
  ASSERT_TRUE(state->ok);
  EXPECT_EQ(*state->Field("cmd_count"), "1");
  EXPECT_EQ(*state->Field("cmd_metrics"), "1");
  ASSERT_NE(state->Field("uptime_s"), nullptr);
  ASSERT_NE(state->Field("build_type"), nullptr);

  Request inspect;
  inspect.command = "inspect";
  inspect.args = {{"db", "demo"}, {"slowlog", "1"}};
  auto inspected = client.Call(inspect, &error);
  ASSERT_TRUE(inspected.has_value()) << error;
  ASSERT_TRUE(inspected->ok) << inspected->code;
  ASSERT_NE(inspected->Field("slow_entries"), nullptr);
  EXPECT_EQ(*inspected->Field("slow_entries"), "1");
  EXPECT_NE(inspected->body.find("slow 0 ["), std::string::npos)
      << inspected->body;
  EXPECT_NE(inspected->body.find("method="), std::string::npos);

  daemon.Stop();
}

}  // namespace
}  // namespace sharpcq
