#include <gtest/gtest.h>

#include <tuple>

#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "count/starsize.h"
#include "gen/random_gen.h"
#include "hybrid/degree.h"
#include "hybrid/degree_counting.h"
#include "hybrid/hybrid_counting.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

// Every counting engine in the library must produce the same number on the
// same instance. Parameters: (seed, force_acyclic, domain size).
using Params = std::tuple<int, bool, int>;

class CountingAgreementTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    auto [seed, acyclic, domain] = GetParam();
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.num_relations = 3;
    qp.force_acyclic = acyclic;
    qp.seed = static_cast<std::uint64_t>(seed);
    query_ = MakeRandomQuery(qp);

    RandomDatabaseParams dp;
    dp.domain = domain;
    dp.tuples_per_relation = 10;
    dp.seed = static_cast<std::uint64_t>(seed) * 65537 + 13;
    db_ = MakeRandomDatabase(query_, dp);

    truth_ = CountByBacktracking(query_, db_);
  }

  ConjunctiveQuery query_;
  Database db_;
  CountInt truth_ = 0;
};

TEST_P(CountingAgreementTest, JoinProjectAgrees) {
  EXPECT_EQ(CountByJoinProject(query_, db_), truth_);
}

TEST_P(CountingAgreementTest, FrontierMaterializationAgrees) {
  EXPECT_EQ(CountByFrontierMaterialization(query_, db_), truth_);
}

TEST_P(CountingAgreementTest, FacadeAgrees) {
  CountResult result = CountAnswers(query_, db_);
  EXPECT_EQ(result.count, truth_) << "method: " << result.method;
}

TEST_P(CountingAgreementTest, SharpHypertreeAgreesWhenApplicable) {
  auto result = CountBySharpHypertree(query_, db_, 3);
  if (result.has_value()) {
    EXPECT_EQ(result->count, truth_);
  }
}

TEST_P(CountingAgreementTest, Ps13OnHypertreeAgreesWhenApplicable) {
  auto ht = FindHypertreeDecomposition(query_, 3);
  if (!ht.has_value()) return;
  Ps13Stats stats;
  EXPECT_EQ(CountByPs13OnHypertree(query_, db_, *ht, &stats).count, truth_);
  // The #-relation set sizes are bounded by the decomposition's degree
  // value (the quantity Theorem 6.2's runtime depends on).
  Hypertree complete = MakeComplete(*ht, query_);
  std::size_t bound = HypertreeBound(query_, db_, complete);
  EXPECT_LE(stats.max_set_size, std::max<std::size_t>(bound, 1));
}

TEST_P(CountingAgreementTest, HybridAgreesWhenApplicable) {
  auto result = CountBySharpBDecomposition(query_, db_, 2);
  if (result.has_value()) {
    EXPECT_EQ(result->count, truth_);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCyclic, CountingAgreementTest,
    ::testing::Combine(::testing::Range(1, 21), ::testing::Values(false),
                       ::testing::Values(3, 4)));

INSTANTIATE_TEST_SUITE_P(
    RandomAcyclic, CountingAgreementTest,
    ::testing::Combine(::testing::Range(1, 21), ::testing::Values(true),
                       ::testing::Values(3)));

// --- structural invariants on random instances -------------------------------

class SharpWidthPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SharpWidthPropertyTest, WidthSearchIsMonotoneInK) {
  RandomQueryParams qp;
  qp.num_vars = 6;
  qp.num_atoms = 5;
  qp.max_arity = 2;
  qp.num_free = 2;
  qp.seed = static_cast<std::uint64_t>(GetParam());
  ConjunctiveQuery q = MakeRandomQuery(qp);
  bool found = false;
  for (int k = 1; k <= 4; ++k) {
    bool now = FindSharpHypertreeDecomposition(q, k).has_value();
    // Once found at some k, every larger k must also succeed (V^k grows).
    if (found) {
      EXPECT_TRUE(now) << "k=" << k;
    }
    found = found || now;
  }
  EXPECT_TRUE(found);  // binary-arity queries of 5 atoms always fit by k=4
}

TEST_P(SharpWidthPropertyTest, DecompositionIsValidTreeProjection) {
  RandomQueryParams qp;
  qp.num_vars = 6;
  qp.num_atoms = 5;
  qp.max_arity = 3;
  qp.num_free = 2;
  qp.seed = static_cast<std::uint64_t>(GetParam()) * 7 + 3;
  ConjunctiveQuery q = MakeRandomQuery(qp);
  auto d = FindSharpHypertreeDecomposition(q, 3);
  if (!d.has_value()) return;
  std::vector<IdSet> cover = SharpCoverEdges(d->core, q.free_vars());
  EXPECT_TRUE(IsTreeProjection(d->tree, cover, d->views));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharpWidthPropertyTest,
                         ::testing::Range(1, 26));

// --- degree invariants --------------------------------------------------------

class DegreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DegreePropertyTest, FullReduceNeverIncreasesBound) {
  RandomQueryParams qp;
  qp.num_vars = 6;
  qp.num_atoms = 5;
  qp.max_arity = 3;
  qp.num_free = 2;
  qp.force_acyclic = true;
  qp.seed = static_cast<std::uint64_t>(GetParam());
  ConjunctiveQuery q = MakeRandomQuery(qp);
  RandomDatabaseParams dp;
  dp.domain = 3;
  dp.tuples_per_relation = 10;
  dp.seed = static_cast<std::uint64_t>(GetParam()) * 37;
  Database db = MakeRandomDatabase(q, dp);
  auto ht = FindHypertreeDecomposition(q, 1);
  if (!ht.has_value()) return;
  Hypertree complete = MakeComplete(*ht, q);
  JoinTreeInstance instance = MaterializeHypertree(q, db, complete);
  std::size_t before = BoundOfInstance(instance, q.free_vars());
  if (!FullReduce(&instance)) return;
  std::size_t after = BoundOfInstance(instance, q.free_vars());
  EXPECT_LE(after, before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreePropertyTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace sharpcq
