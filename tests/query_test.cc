#include <gtest/gtest.h>

#include "data/database.h"
#include "gen/paper_queries.h"
#include "query/atom_relation.h"
#include "query/conjunctive_query.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

TEST(ConjunctiveQueryTest, BasicConstruction) {
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  q.AddAtomVars("s", {"Y", "Z"});
  q.SetFreeByName({"X"});
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_EQ(q.AllVars().size(), 3u);
  EXPECT_EQ(q.free_vars(), VarsOf(q, {"X"}));
  EXPECT_EQ(q.ExistentialVars(), VarsOf(q, {"Y", "Z"}));
  EXPECT_TRUE(q.IsSimple());
}

TEST(ConjunctiveQueryTest, NonSimpleDetected) {
  ConjunctiveQuery q = MakeQ0();  // uses st and rr twice/thrice
  EXPECT_FALSE(q.IsSimple());
}

TEST(ConjunctiveQueryTest, ColoredAddsOneAtomPerFreeVariable) {
  ConjunctiveQuery q = MakeQ0();
  ConjunctiveQuery c = q.Colored();
  EXPECT_EQ(c.NumAtoms(), q.NumAtoms() + 3);
  int colors = 0;
  for (const Atom& a : c.atoms()) {
    colors += ConjunctiveQuery::IsColorRelation(a.relation) ? 1 : 0;
  }
  EXPECT_EQ(colors, 3);
  // Uncoloring restores the original atoms.
  EXPECT_EQ(c.Uncolored().NumAtoms(), q.NumAtoms());
}

TEST(ConjunctiveQueryTest, FullColoredCoversAllVariables) {
  ConjunctiveQuery q = MakeQ1();
  ConjunctiveQuery fc = q.FullColored();
  EXPECT_EQ(fc.NumAtoms(), q.NumAtoms() + q.AllVars().size());
}

TEST(ConjunctiveQueryTest, WithFreeChangesQuantification) {
  ConjunctiveQuery q = MakeQ0();
  IdSet s_bar = Union(q.free_vars(), VarsOf(q, {"D"}));
  ConjunctiveQuery qs = q.WithFree(s_bar);
  EXPECT_EQ(qs.free_vars(), s_bar);
  EXPECT_EQ(qs.NumAtoms(), q.NumAtoms());
  // Variable ids are shared between the two queries.
  EXPECT_EQ(qs.VarByName("D"), q.VarByName("D"));
}

TEST(ConjunctiveQueryTest, WithoutAtomAndKeepAtoms) {
  ConjunctiveQuery q = MakeQ1();
  ConjunctiveQuery smaller = q.WithoutAtom(0);
  EXPECT_EQ(smaller.NumAtoms(), 3u);
  EXPECT_EQ(smaller.atoms()[0].relation, "s2");
  ConjunctiveQuery kept = q.KeepAtoms({1, 3});
  EXPECT_EQ(kept.NumAtoms(), 2u);
  EXPECT_EQ(kept.atoms()[0].relation, "s2");
  EXPECT_EQ(kept.atoms()[1].relation, "s4");
}

TEST(ConjunctiveQueryTest, HypergraphDedupsAtomEdges) {
  // Q0 has st(D,F) and st(D,G): distinct edges; rr edges are distinct too.
  ConjunctiveQuery q = MakeQ0();
  EXPECT_EQ(q.BuildHypergraph().num_edges(), 9u);
  // A query with two atoms over the same variables produces one edge.
  ConjunctiveQuery dup;
  dup.AddAtomVars("r", {"X", "Y"});
  dup.AddAtomVars("s", {"Y", "X"});
  EXPECT_EQ(dup.BuildHypergraph().num_edges(), 1u);
}

TEST(ConjunctiveQueryTest, SizeMeasure) {
  ConjunctiveQuery q = MakeQ1();
  // 4 atoms of arity 2 plus 2 free variables: 4*(1+2) + 2 = 14.
  EXPECT_EQ(q.Size(), 14u);
}

// --- parser -----------------------------------------------------------------

TEST(ParserTest, ParsesQ0Shape) {
  auto q = ParseQuery(
      "Q(A,B,C) <- mw(A,B,I), wt(B,D), wi(B,E), pt(C,D), st(D,F), st(D,G), "
      "rr(G,H), rr(F,H), rr(D,H)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumAtoms(), 9u);
  EXPECT_EQ(q->free_vars().size(), 3u);
  // Structure matches the programmatic constructor.
  ConjunctiveQuery ref = MakeQ0();
  EXPECT_EQ(SortedEdges(q->BuildHypergraph().edges()).size(),
            SortedEdges(ref.BuildHypergraph().edges()).size());
}

TEST(ParserTest, AcceptsPrologArrow) {
  EXPECT_TRUE(ParseQuery("Q(X) :- r(X,Y)").has_value());
}

TEST(ParserTest, IntegerConstants) {
  auto q = ParseQuery("Q(X) <- r(X, 42), s(-7, X)");
  ASSERT_TRUE(q.has_value());
  EXPECT_FALSE(q->atoms()[0].terms[1].is_var());
  EXPECT_EQ(q->atoms()[0].terms[1].value, 42);
  EXPECT_EQ(q->atoms()[1].terms[0].value, -7);
}

TEST(ParserTest, SymbolicConstantsNeedDict) {
  std::string error;
  EXPECT_FALSE(ParseQuery("Q(X) <- r(X, alice)", nullptr, &error).has_value());
  ValueDict dict;
  auto q = ParseQuery("Q(X) <- r(X, alice), s(X, 'bob smith')", &dict);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atoms()[0].terms[1].value, dict.Find("alice"));
  EXPECT_EQ(q->atoms()[1].terms[1].value, dict.Find("bob smith"));
}

TEST(ParserTest, BooleanQueryAllowed) {
  auto q = ParseQuery("Q() <- r(X,Y), r(Y,X)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->free_vars().empty());
}

TEST(ParserTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseQuery("Q(X) r(X)", nullptr, &error).has_value());
  EXPECT_FALSE(ParseQuery("Q(X) <- ", nullptr, &error).has_value());
  EXPECT_FALSE(ParseQuery("Q(X) <- r(X", nullptr, &error).has_value());
  EXPECT_FALSE(ParseQuery("Q(x) <- r(x)", nullptr, &error).has_value());
  // Head variable missing from the body.
  EXPECT_FALSE(ParseQuery("Q(Z) <- r(X,Y)", nullptr, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParserTest, RejectsEmptyArgumentPositions) {
  // "Q(X,,Y) <- r(X,Y)" used to parse as if the head were Q(X,Y): the split
  // dropped the empty position, silently narrowing the atom.
  std::string error;
  EXPECT_FALSE(ParseQuery("Q(X,,Y) <- r(X,Y), s(Y)", nullptr, &error)
                   .has_value());
  EXPECT_NE(error.find("empty argument position"), std::string::npos)
      << error;
  error.clear();
  EXPECT_FALSE(ParseQuery("Q(X) <- r(X,,Y)", nullptr, &error).has_value());
  EXPECT_NE(error.find("empty argument position"), std::string::npos)
      << error;
  EXPECT_FALSE(ParseQuery("Q(X) <- r(X,)", nullptr, &error).has_value());
  EXPECT_FALSE(ParseQuery("Q(X) <- r(,X)", nullptr, &error).has_value());
  EXPECT_FALSE(ParseQuery("Q(,) <- r(X)", nullptr, &error).has_value());
  // Nullary atoms remain legal; only positional blanks are errors.
  EXPECT_TRUE(ParseQuery("Q() <- r(X,Y)").has_value());
}

// --- atom -> VarRelation ----------------------------------------------------

TEST(AtomRelationTest, PlainAtom) {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {3, 4});
  ConjunctiveQuery q;
  q.AddAtomVars("r", {"X", "Y"});
  VarRelation rel = AtomToVarRelation(q.atoms()[0], db);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.vars().size(), 2u);
}

TEST(AtomRelationTest, ConstantFiltersRows) {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {3, 2});
  db.AddTuple("r", {3, 9});
  ConjunctiveQuery q;
  VarId x = q.InternVar("X");
  q.AddAtom("r", {Term::Var(x), Term::Const(2)});
  VarRelation rel = AtomToVarRelation(q.atoms()[0], db);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.rel().ContainsRow(std::vector<Value>{1}));
  EXPECT_TRUE(rel.rel().ContainsRow(std::vector<Value>{3}));
}

TEST(AtomRelationTest, RepeatedVariableEnforcesEquality) {
  Database db;
  db.AddTuple("r", {1, 1});
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {3, 3});
  ConjunctiveQuery q;
  VarId x = q.InternVar("X");
  q.AddAtom("r", {Term::Var(x), Term::Var(x)});
  VarRelation rel = AtomToVarRelation(q.atoms()[0], db);
  EXPECT_EQ(rel.size(), 2u);  // (1) and (3)
  EXPECT_EQ(rel.vars().size(), 1u);
}

TEST(AtomRelationTest, ProjectionDedups) {
  // Two db rows that agree on the variable positions collapse.
  Database db;
  db.AddTuple("r", {1, 7});
  db.AddTuple("r", {1, 8});
  ConjunctiveQuery q;
  VarId x = q.InternVar("X");
  q.AddAtom("r", {Term::Var(x), Term::Var(q.InternVar("Y"))});
  ConjunctiveQuery q2;
  VarId x2 = q2.InternVar("X");
  q2.AddAtom("r", {Term::Var(x2), Term::Const(7)});
  EXPECT_EQ(AtomToVarRelation(q.atoms()[0], db).size(), 2u);
  EXPECT_EQ(AtomToVarRelation(q2.atoms()[0], db).size(), 1u);
}

}  // namespace
}  // namespace sharpcq
