// Lemma 5.10's counting slice reduction, executed: recovering colored
// counts from a plain #CQ oracle.

#include <gtest/gtest.h>

#include <random>

#include "count/enumeration.h"
#include "gen/random_gen.h"
#include "query/conjunctive_query.h"
#include "reductions/color_elimination.h"
#include "solver/core.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

CountOracle BacktrackingOracle() {
  return [](const ConjunctiveQuery& q, const Database& db) {
    return CountByBacktracking(q, db);
  };
}

// Adds a color relation for every variable of q, restricting it to `dom`.
void AddUniformColors(const ConjunctiveQuery& q, const std::vector<Value>& dom,
                      Database* db) {
  for (VarId v : q.AllVars()) {
    std::string rel = ConjunctiveQuery::ColorRelationName(q.VarName(v));
    for (Value value : dom) db->AddTuple(rel, {value});
  }
}

TEST(AutomorphismTest, AsymmetricPathHasOneRestriction) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"Y", "Z"});
  q.SetFreeByName({"X", "Z"});
  EXPECT_EQ(CountFreeAutomorphismRestrictions(q), 1u);
}

TEST(AutomorphismTest, TwoCycleHasSwap) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"Y", "X"});
  q.SetFreeByName({"X", "Y"});
  EXPECT_EQ(CountFreeAutomorphismRestrictions(q), 2u);  // identity and swap
}

TEST(ColorEliminationTest, DirectedPathAgainstDirect) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"Y", "Z"});
  q.SetFreeByName({"X", "Z"});

  Database b;
  // A small digraph.
  for (auto [s, t] : std::vector<std::pair<Value, Value>>{
           {0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 3}}) {
    b.AddTuple("e", {s, t});
  }
  AddUniformColors(q, {0, 1, 2, 3}, &b);

  auto via = CountFullColorViaOracle(q, b, BacktrackingOracle());
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(*via, CountFullColorDirect(q, b));
}

TEST(ColorEliminationTest, RestrictiveDomainsChangeTheCount) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.SetFreeByName({"X"});
  Database b;
  b.AddTuple("e", {0, 1});
  b.AddTuple("e", {1, 2});
  b.AddTuple("e", {2, 0});
  // X restricted to {0,1}, Y unrestricted.
  b.AddTuple(ConjunctiveQuery::ColorRelationName("X"), {0});
  b.AddTuple(ConjunctiveQuery::ColorRelationName("X"), {1});
  for (Value v : {0, 1, 2}) {
    b.AddTuple(ConjunctiveQuery::ColorRelationName("Y"), {v});
  }
  auto via = CountFullColorViaOracle(q, b, BacktrackingOracle());
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(*via, CountInt{2});
  EXPECT_EQ(*via, CountFullColorDirect(q, b));
}

TEST(ColorEliminationTest, SymmetricTwoCycleDividesByAutomorphisms) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"Y", "X"});
  q.SetFreeByName({"X", "Y"});
  Database b;
  b.AddTuple("e", {0, 1});
  b.AddTuple("e", {1, 0});
  b.AddTuple("e", {2, 2});
  AddUniformColors(q, {0, 1, 2}, &b);
  auto via = CountFullColorViaOracle(q, b, BacktrackingOracle());
  ASSERT_TRUE(via.has_value());
  // Answers: (0,1), (1,0), (2,2).
  EXPECT_EQ(*via, CountInt{3});
  EXPECT_EQ(*via, CountFullColorDirect(q, b));
}

TEST(ColorEliminationTest, NonCoreColoringRejected) {
  // color(Q) is not a core: the doubled edge folds.
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"X", "Z"});
  q.SetFreeByName({"X"});
  Database b;
  b.AddTuple("e", {0, 1});
  AddUniformColors(q, {0, 1}, &b);
  EXPECT_FALSE(
      CountFullColorViaOracle(q, b, BacktrackingOracle()).has_value());
}

TEST(ColorEliminationTest, ConstantsRejected) {
  ConjunctiveQuery q;
  VarId x = q.InternVar("X");
  q.AddAtom("e", {Term::Var(x), Term::Const(7)});
  q.SetFree(IdSet{x});
  Database b;
  b.AddTuple("e", {0, 7});
  AddUniformColors(q, {0, 7}, &b);
  EXPECT_FALSE(
      CountFullColorViaOracle(q, b, BacktrackingOracle()).has_value());
}

TEST(ColorEliminationTest, RandomInstancesAgreeWithDirect) {
  std::mt19937_64 rng(99);
  int validated = 0;
  for (std::uint64_t seed = 1; seed <= 40 && validated < 12; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 4;
    qp.num_atoms = 3;
    qp.max_arity = 2;
    qp.num_free = 2;
    qp.num_relations = 2;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    // The reduction needs color(Q) to be a core; skip instances that fold.
    ConjunctiveQuery colored = q.Colored();
    if (ComputeCoreSubquery(colored).NumAtoms() != colored.NumAtoms()) {
      continue;
    }
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 6;
    dp.seed = seed * 17;
    Database b = MakeRandomDatabase(q, dp);
    // Random per-variable domains (non-empty).
    for (VarId v : q.AllVars()) {
      std::string rel = ConjunctiveQuery::ColorRelationName(q.VarName(v));
      b.AddTuple(rel, {static_cast<Value>(rng() % 3)});
      if (rng() % 2 == 0) b.AddTuple(rel, {static_cast<Value>(rng() % 3)});
      b.AddTuple(rel, {static_cast<Value>(2)});
    }
    b.DedupAll();
    auto via = CountFullColorViaOracle(q, b, BacktrackingOracle());
    ASSERT_TRUE(via.has_value()) << "seed " << seed;
    EXPECT_EQ(*via, CountFullColorDirect(q, b)) << "seed " << seed;
    ++validated;
  }
  EXPECT_GE(validated, 8);
}

}  // namespace
}  // namespace sharpcq
