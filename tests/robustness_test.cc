// Robustness suite (ISSUE 10): fault injection, crash-consistent recovery,
// and resource-budgeted degradation. The crash matrix forks a child per
// storage failpoint site, injects a simulated power cut (_exit, no
// destructors), and asserts the reopened catalog serves the last committed
// generation byte-identically with no partial files left behind. The
// budget tests assert the differential property — a budgeted count either
// matches the unbudgeted answer exactly or refuses with
// kResourceExhausted — and that engines and daemons stay fully usable
// after a refusal.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/table.h"
#include "data/csv.h"
#include "engine/engine.h"
#include "gen/random_gen.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "storage/catalog.h"
#include "util/failpoint.h"
#include "util/mem_budget.h"
#include "util/status.h"

namespace sharpcq {
namespace {

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "sharpcq_robust_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(d);
  return names;
}

bool AnyTmpFile(const std::string& dir) {
  for (const std::string& name : ListDir(dir)) {
    if (name.find(".tmp.") != std::string::npos) return true;
  }
  return false;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// Every test that arms failpoints scopes them: the suite binary runs many
// tests in one process and the registry is global.
struct ScopedFailpoints {
  ScopedFailpoints() { failpoint::DisarmAll(); }
  ~ScopedFailpoints() { failpoint::DisarmAll(); }
};

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

Database SmallDatabase() {
  Database db;
  db.AddTuple("r", {1, 2});
  db.AddTuple("r", {2, 3});
  db.AddTuple("r", {3, 1});
  db.AddTuple("s", {1, 10});
  db.AddTuple("s", {2, 20});
  return db;
}

// Big enough that any join over it charges far more than the tiny budgets
// below (one index on r alone is >= 4000 * 40 bytes).
Database BigDatabase() {
  Database db;
  std::mt19937 rng(7);
  std::uniform_int_distribution<Value> value(0, 199);
  for (int i = 0; i < 4000; ++i) db.AddTuple("r", {value(rng), value(rng)});
  db.DedupAll();
  return db;
}

const char kBigQuery[] = "Q(A,B,C) <- r(A,B), r(B,C), r(C,A)";
const char kSmallQuery[] = "Q(X,Z) <- r(X,Y), s(Y,Z)";

// --- failpoint framework -----------------------------------------------------

TEST(FailpointTest, UnarmedSiteIsFreeAndReturnsNone) {
  ScopedFailpoints scoped;
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.site"), FailpointAction::kNone);
}

TEST(FailpointTest, FiresOnNthHitAndAutoDisarms) {
  ScopedFailpoints scoped;
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.after_hits = 2;  // skip two hits
  trigger.fire_count = 1;  // fire once
  failpoint::Arm("robust.test.nth", trigger);
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.nth"), FailpointAction::kNone);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.nth"), FailpointAction::kNone);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.nth"), FailpointAction::kError);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.nth"), FailpointAction::kNone);
  EXPECT_EQ(failpoint::HitCount("robust.test.nth"), 4u);
}

TEST(FailpointTest, DisarmStopsFiring) {
  ScopedFailpoints scoped;
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  failpoint::Arm("robust.test.disarm", trigger);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.disarm"), FailpointAction::kError);
  failpoint::Disarm("robust.test.disarm");
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.disarm"), FailpointAction::kNone);
}

TEST(FailpointTest, OtherSitesUnaffectedWhileArmed) {
  ScopedFailpoints scoped;
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  failpoint::Arm("robust.test.only", trigger);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.other"), FailpointAction::kNone);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.test.only"), FailpointAction::kError);
}

TEST(FailpointTest, ArmFromSpecParsesGrammar) {
  ScopedFailpoints scoped;
  std::string error;
  ASSERT_TRUE(failpoint::ArmFromSpec(
      "robust.spec.a=error@1x2;robust.spec.b=delay:5ms", &error))
      << error;
  // @1: first hit skipped; x2: fires exactly twice.
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.spec.a"), FailpointAction::kNone);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.spec.a"), FailpointAction::kError);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.spec.a"), FailpointAction::kError);
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.spec.a"), FailpointAction::kNone);
  // kDelay is absorbed inside Hit (sleep, then proceed): callers see kNone.
  EXPECT_EQ(SHARPCQ_FAILPOINT("robust.spec.b"), FailpointAction::kNone);
}

TEST(FailpointTest, MalformedSpecsRejected) {
  ScopedFailpoints scoped;
  std::string error;
  EXPECT_FALSE(failpoint::ArmFromSpec("nosite", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(failpoint::ArmFromSpec("a.b=notanaction", &error));
  EXPECT_FALSE(failpoint::ArmFromSpec("=error", &error));
  EXPECT_FALSE(failpoint::ArmFromSpec("a.b=error@x", &error));
}

// --- memory budget primitive -------------------------------------------------

TEST(MemoryBudgetTest, ChargesAndRefusesAtLimit) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_FALSE(budget.TryCharge(50));  // would be 110; backed out
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used(), 100u);
  budget.Release(100);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, UnlimitedBudgetStillCounts) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryCharge(1ull << 40));
  EXPECT_EQ(budget.used(), 1ull << 40);
  budget.Release(1ull << 40);
  EXPECT_EQ(budget.used(), 0u);
}

// --- crash matrix ------------------------------------------------------------

// One crash-consistency trial: seed generation 1, then fork a child that
// arms `site` with a simulated crash and attempts generation 2. The child
// must die with the failpoint exit code (proving the site actually fired
// mid-ingest); a fresh catalog must then serve generation 1 byte-for-byte
// and leave no temp files behind after recovery.
void RunCrashTrial(const std::string& site) {
  SCOPED_TRACE(site);
  const std::string root = MakeScratchDir();
  std::vector<std::uint8_t> committed_bytes;
  std::string snapshot1;
  {
    Catalog catalog(root);
    Status status;
    auto gen = catalog.Ingest("db", SmallDatabase(), nullptr, &status);
    ASSERT_TRUE(gen.has_value()) << status;
    ASSERT_EQ(*gen, 1u);
    snapshot1 = catalog.SnapshotPath("db", 1);
    committed_bytes = ReadFileBytes(snapshot1);
  }

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest machinery, no destructors — a power cut in miniature.
    failpoint::Trigger trigger;
    trigger.action = FailpointAction::kCrash;
    failpoint::Arm(site, trigger);
    Catalog catalog(root);
    Database next;
    next.AddTuple("r", {9, 9});
    Status status;
    catalog.Ingest("db", next, nullptr, &status);
    ::_exit(0);  // the failpoint did not fire: the trial is broken
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(wstatus), kFailpointCrashExit)
      << "injected crash at " << site << " never fired";

  // Recovery: a brand-new catalog (fresh caches, as after a real restart).
  Catalog reopened(root);
  Status status;
  auto entry = reopened.Open("db", &status);
  ASSERT_NE(entry, nullptr) << status;
  EXPECT_EQ(entry->generation, 1u);
  EXPECT_EQ(entry->db->TotalTuples(), SmallDatabase().TotalTuples());
  EXPECT_EQ(ReadFileBytes(snapshot1), committed_bytes);
  EXPECT_FALSE(AnyTmpFile(root + "/db"))
      << "partial files survived recovery after crash at " << site;
}

TEST(CrashMatrixTest, TmpOpen) { RunCrashTrial("storage.tmp_open"); }
TEST(CrashMatrixTest, Write) { RunCrashTrial("storage.write"); }
TEST(CrashMatrixTest, Fsync) { RunCrashTrial("storage.fsync"); }
TEST(CrashMatrixTest, Rename) { RunCrashTrial("storage.rename"); }
TEST(CrashMatrixTest, ManifestSwap) { RunCrashTrial("catalog.manifest_swap"); }

// --- stale temp files (the recycled-pid bugfix) ------------------------------

TEST(ScavengeTest, IngestSurvivesPlantedTmpCollision) {
  const std::string root = MakeScratchDir();
  Catalog catalog(root);
  Status status;
  ASSERT_TRUE(
      catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value())
      << status;

  // The exact temp name the next ingest's writer will want: a crashed
  // earlier incarnation of this very pid. Without scavenging, the O_EXCL
  // open collides and ingest fails forever.
  const std::string dir = root + "/db";
  const std::string collision = catalog.SnapshotPath("db", 2) + ".tmp." +
                                std::to_string(::getpid());
  WriteFileBytes(collision, {0xde, 0xad});
  WriteFileBytes(dir + "/snapshot-9.sharpcq.tmp.12345", {0xbe, 0xef});

  auto gen = catalog.Ingest("db", SmallDatabase(), nullptr, &status);
  ASSERT_TRUE(gen.has_value()) << status;
  EXPECT_EQ(*gen, 2u);
  EXPECT_FALSE(AnyTmpFile(dir));
}

TEST(ScavengeTest, OpenRemovesOrphanedTmpFiles) {
  const std::string root = MakeScratchDir();
  {
    Catalog catalog(root);
    Status status;
    ASSERT_TRUE(
        catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value())
        << status;
  }
  const std::string dir = root + "/db";
  WriteFileBytes(dir + "/snapshot-2.sharpcq.tmp.4242", {0x00});
  ASSERT_TRUE(AnyTmpFile(dir));

  Catalog reopened(root);
  Status status;
  ASSERT_NE(reopened.Open("db", &status), nullptr) << status;
  EXPECT_FALSE(AnyTmpFile(dir));
}

// --- corruption quarantine and rollback --------------------------------------

TEST(QuarantineTest, CorruptCurrentGenerationRollsBackToOlder) {
  const std::string root = MakeScratchDir();
  std::string snapshot2;
  {
    Catalog catalog(root);
    Status status;
    ASSERT_TRUE(
        catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value());
    Database next = SmallDatabase();
    next.AddTuple("r", {7, 8});
    ASSERT_TRUE(catalog.Ingest("db", next, nullptr, &status).has_value());
    snapshot2 = catalog.SnapshotPath("db", 2);
  }
  // Flip one byte mid-file: the checksum pass must catch it.
  std::vector<std::uint8_t> bytes = ReadFileBytes(snapshot2);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0xff;
  WriteFileBytes(snapshot2, bytes);

  Catalog reopened(root);
  Status status;
  auto entry = reopened.Open("db", &status);
  ASSERT_NE(entry, nullptr) << status;
  EXPECT_EQ(entry->generation, 1u);
  EXPECT_EQ(entry->db->TotalTuples(), SmallDatabase().TotalTuples());

  // The evidence moved to corrupt/ (never served again), and the manifest
  // rolled back so a third catalog pays no re-verification of gen 2.
  EXPECT_FALSE(FileExists(snapshot2));
  EXPECT_TRUE(FileExists(root + "/db/corrupt/snapshot-000002.sharpcq"));
  Catalog third(root);
  auto current = third.CurrentGeneration("db", &status);
  ASSERT_TRUE(current.has_value()) << status;
  EXPECT_EQ(*current, 1u);
}

TEST(QuarantineTest, AllGenerationsCorruptFailsWithCorruptData) {
  const std::string root = MakeScratchDir();
  std::string snapshot1;
  {
    Catalog catalog(root);
    Status status;
    ASSERT_TRUE(
        catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value());
    snapshot1 = catalog.SnapshotPath("db", 1);
  }
  std::vector<std::uint8_t> bytes = ReadFileBytes(snapshot1);
  bytes[bytes.size() / 2] ^= 0xff;
  WriteFileBytes(snapshot1, bytes);

  Catalog reopened(root);
  Status status;
  EXPECT_EQ(reopened.Open("db", &status), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kCorruptData) << status;
}

// --- injected I/O errors -----------------------------------------------------

TEST(InjectedIoTest, ShortWriteNeverCommitsAndIngestRecovers) {
  ScopedFailpoints scoped;
  const std::string root = MakeScratchDir();
  Catalog catalog(root);
  Status status;
  ASSERT_TRUE(
      catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value());

  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kShortWrite;
  trigger.fire_count = 1;
  failpoint::Arm("storage.write", trigger);
  EXPECT_FALSE(
      catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value());
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status;
  // The torn prefix never crossed the rename barrier.
  EXPECT_FALSE(FileExists(catalog.SnapshotPath("db", 2)));

  // The same catalog object ingests fine once the fault clears.
  failpoint::DisarmAll();
  auto gen = catalog.Ingest("db", SmallDatabase(), nullptr, &status);
  ASSERT_TRUE(gen.has_value()) << status;
  auto entry = catalog.Open("db", &status);
  ASSERT_NE(entry, nullptr) << status;
  EXPECT_EQ(entry->generation, *gen);
}

TEST(InjectedIoTest, FsyncFailureSurfacesAsIoError) {
  ScopedFailpoints scoped;
  const std::string root = MakeScratchDir();
  Catalog catalog(root);
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.fire_count = 1;
  failpoint::Arm("storage.fsync", trigger);
  Status status;
  EXPECT_FALSE(
      catalog.Ingest("db", SmallDatabase(), nullptr, &status).has_value());
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status;
}

TEST(InjectedIoTest, CsvRowFaultFailsTheLoad) {
  ScopedFailpoints scoped;
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  failpoint::Arm("csv.row", trigger);
  std::istringstream in("1,2\n3,4\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kIoError) << result.message;
}

// --- memory-budget differential ----------------------------------------------

TEST(MemoryBudgetEngineTest, GenerousBudgetMatchesUnbudgetedCount) {
  const Database db = BigDatabase();
  const ConjunctiveQuery q = Parse(kBigQuery);
  CountingEngine unbudgeted;
  const CountResult expected = unbudgeted.Count(q, db);
  ASSERT_TRUE(expected.ok());

  EngineOptions options;
  options.max_query_bytes = 1ull << 30;
  CountingEngine budgeted(options);
  const CountResult result = budgeted.Count(q, db);
  ASSERT_TRUE(result.ok()) << CountStatusName(result.status);
  EXPECT_EQ(result.count, expected.count);
  EXPECT_GT(result.mem_charged_bytes, 0u);
  EXPECT_LT(result.mem_charged_bytes, options.max_query_bytes);
}

TEST(MemoryBudgetEngineTest, TinyBudgetRefusesAndEngineStaysUsable) {
  const Database big = BigDatabase();
  EngineOptions options;
  options.max_query_bytes = 8192;
  CountingEngine engine(options);

  const CountResult refused = engine.Count(Parse(kBigQuery), big);
  EXPECT_EQ(refused.status, CountStatus::kResourceExhausted);
  EXPECT_GT(refused.mem_refused_bytes, 0u);

  // Same engine, a query that fits: full service continues.
  const Database small = SmallDatabase();
  const CountResult ok = engine.Count(Parse(kSmallQuery), small);
  ASSERT_TRUE(ok.ok()) << CountStatusName(ok.status);
  EXPECT_EQ(ok.count, CountInt{2});  // (1,20) and (3,10)

  // And the big query still refuses deterministically.
  EXPECT_EQ(engine.Count(Parse(kBigQuery), big).status,
            CountStatus::kResourceExhausted);
}

TEST(MemoryBudgetEngineTest, ProcessBudgetDrainsToZeroAfterEachCount) {
  EngineOptions options;
  options.total_budget = std::make_shared<MemoryBudget>(1ull << 30);
  CountingEngine engine(options);
  const Database db = BigDatabase();
  const CountResult result = engine.Count(Parse(kBigQuery), db);
  ASSERT_TRUE(result.ok()) << CountStatusName(result.status);
  EXPECT_EQ(options.total_budget->used(), 0u)
      << "execution ended without releasing its process-budget charges";
  // A refused run drains too (the partial charges back out on unwind).
  EngineOptions tight;
  tight.total_budget = std::make_shared<MemoryBudget>(8192);
  CountingEngine tight_engine(tight);
  EXPECT_EQ(tight_engine.Count(Parse(kBigQuery), db).status,
            CountStatus::kResourceExhausted);
  EXPECT_EQ(tight.total_budget->used(), 0u);
}

TEST(MemoryBudgetEngineTest, InjectedIndexBuildFailureIsResourceExhausted) {
  ScopedFailpoints scoped;
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.fire_count = 1;
  failpoint::Arm("index.build", trigger);
  CountingEngine engine;
  const CountResult result = engine.Count(Parse(kSmallQuery), SmallDatabase());
  EXPECT_EQ(result.status, CountStatus::kResourceExhausted);
  failpoint::DisarmAll();
  EXPECT_TRUE(engine.Count(Parse(kSmallQuery), SmallDatabase()).ok());
}

// --- daemon budgets ----------------------------------------------------------

void SeedDaemonCatalog(const std::string& root) {
  Catalog catalog(root);
  Status status;
  ASSERT_TRUE(
      catalog.Ingest("demo", SmallDatabase(), nullptr, &status).has_value())
      << status;
  ASSERT_TRUE(
      catalog.Ingest("big", BigDatabase(), nullptr, &status).has_value())
      << status;
}

struct DaemonFixture {
  explicit DaemonFixture(DaemonOptions options = {}) {
    options.catalog_root = MakeScratchDir();
    SeedDaemonCatalog(options.catalog_root);
    daemon = std::make_unique<Daemon>(std::move(options));
    std::string error;
    EXPECT_TRUE(daemon->Start(&error)) << error;
  }
  ~DaemonFixture() { daemon->Stop(); }

  Client Connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", daemon->port(), &error)) << error;
    return client;
  }

  std::unique_ptr<Daemon> daemon;
};

Request CountRequest(const std::string& db, const std::string& query) {
  Request request;
  request.command = "count";
  request.args.emplace_back("db", db);
  request.body = query;
  return request;
}

TEST(DaemonBudgetTest, OverBudgetCountRefusedWhileDaemonKeepsServing) {
  DaemonOptions options;
  options.max_query_bytes = 8192;
  DaemonFixture fixture(options);
  Client client = fixture.Connect();
  std::string error;

  auto refused = client.Call(CountRequest("big", kBigQuery), &error);
  ASSERT_TRUE(refused.has_value()) << error;
  EXPECT_FALSE(refused->ok);
  EXPECT_EQ(refused->code, wire::kResourceExhausted) << refused->message;

  // The same connection immediately serves a query that fits the budget.
  auto served = client.Call(CountRequest("demo", kSmallQuery), &error);
  ASSERT_TRUE(served.has_value()) << error;
  ASSERT_TRUE(served->ok) << served->code << " " << served->message;
  EXPECT_EQ(*served->Field("count"), "2");

  Request status_request;
  status_request.command = "status";
  auto status = client.Call(status_request, &error);
  ASSERT_TRUE(status.has_value()) << error;
  ASSERT_TRUE(status->ok);
  EXPECT_EQ(*status->Field("resource_exhausted"), "1");
  EXPECT_EQ(*status->Field("max_query_bytes"), "8192");
}

TEST(DaemonBudgetTest, SharedTotalBudgetRefusesAndReportsInflight) {
  DaemonOptions options;
  options.max_total_bytes = 8192;
  DaemonFixture fixture(options);
  Client client = fixture.Connect();
  std::string error;

  auto refused = client.Call(CountRequest("big", kBigQuery), &error);
  ASSERT_TRUE(refused.has_value()) << error;
  EXPECT_EQ(refused->code, wire::kResourceExhausted) << refused->message;

  Request status_request;
  status_request.command = "status";
  auto status = client.Call(status_request, &error);
  ASSERT_TRUE(status.has_value()) << error;
  EXPECT_EQ(*status->Field("max_total_bytes"), "8192");
  // Nothing in flight now: the refused execution backed its charges out.
  EXPECT_EQ(*status->Field("mem_inflight_bytes"), "0");
}

TEST(DaemonFailpointTest, InjectedRecvFaultDropsOneConnectionOnly) {
  ScopedFailpoints scoped;
  DaemonFixture fixture;
  Client doomed = fixture.Connect();
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.fire_count = 1;
  failpoint::Arm("daemon.recv", trigger);
  std::string error;
  EXPECT_FALSE(
      doomed.Call(CountRequest("demo", kSmallQuery), &error).has_value());
  failpoint::DisarmAll();

  Client healthy = fixture.Connect();
  auto served = healthy.Call(CountRequest("demo", kSmallQuery), &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_TRUE(served->ok) << served->code;
}

// --- client retries ----------------------------------------------------------

TEST(ClientRetryTest, RetrySafeCommandsAreExactlyTheReadOnlyOnes) {
  EXPECT_TRUE(IsRetrySafeCommand("count"));
  EXPECT_TRUE(IsRetrySafeCommand("status"));
  EXPECT_TRUE(IsRetrySafeCommand("inspect"));
  EXPECT_TRUE(IsRetrySafeCommand("metrics"));
  EXPECT_FALSE(IsRetrySafeCommand("ingest"));
  EXPECT_FALSE(IsRetrySafeCommand("shutdown"));
}

// A scriptable fake peer: binds an ephemeral loopback port and runs
// `serve` on each accepted connection until destruction.
struct FakeServer {
  explicit FakeServer(std::function<void(int fd)> serve) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port = ntohs(addr.sin_port);
    thread = std::thread([this, serve = std::move(serve)] {
      for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        serve(fd);
        ::close(fd);
      }
    });
  }
  ~FakeServer() {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    if (thread.joinable()) thread.join();
  }

  int listen_fd = -1;
  int port = 0;
  std::thread thread;
};

RetryPolicy FastRetry(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff = std::chrono::milliseconds(1);
  return policy;
}

TEST(ClientRetryTest, OverloadedResponseRetriesUntilSuccess) {
  // First request on each connection gets OVERLOADED, the second succeeds.
  FakeServer server([](int fd) {
    std::string payload;
    std::string error;
    if (RecvFrame(fd, kDefaultMaxFrameBytes, &payload, &error) !=
        FrameStatus::kOk) {
      return;
    }
    SendFrame(fd, SerializeResponse(ErrorResponse(wire::kOverloaded, "busy")),
              &error);
    if (RecvFrame(fd, kDefaultMaxFrameBytes, &payload, &error) !=
        FrameStatus::kOk) {
      return;
    }
    SendFrame(fd, SerializeResponse(OkResponse()), &error);
  });

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port, &error)) << error;
  int attempts = 0;
  auto response = client.CallWithRetry(CountRequest("demo", kSmallQuery),
                                       FastRetry(3), &error, &attempts);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(attempts, 2);
}

TEST(ClientRetryTest, ConnectRefusedRetriesEvenForIngestThenGivesUp) {
  // Grab an ephemeral port, then close it: connects are refused, so the
  // request is provably never delivered and even ingest may retry.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int dead_port = ntohs(addr.sin_port);
  ::close(probe);

  Client client;
  std::string error;
  EXPECT_FALSE(client.Connect("127.0.0.1", dead_port, &error));
  Request ingest;
  ingest.command = "ingest";
  int attempts = 0;
  auto response =
      client.CallWithRetry(ingest, FastRetry(3), &error, &attempts);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(attempts, 3);
  EXPECT_FALSE(error.empty());
}

TEST(ClientRetryTest, MidCallFailureRetriesCountButNeverIngest) {
  // The server reads each request and drops the connection unanswered: the
  // outcome is ambiguous from the client's side.
  FakeServer server([](int fd) {
    std::string payload;
    std::string error;
    RecvFrame(fd, kDefaultMaxFrameBytes, &payload, &error);
  });

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port, &error)) << error;
  Request ingest;
  ingest.command = "ingest";
  int attempts = 0;
  EXPECT_FALSE(
      client.CallWithRetry(ingest, FastRetry(3), &error, &attempts)
          .has_value());
  EXPECT_EQ(attempts, 1) << "ingest must not be re-sent after an ambiguous "
                            "failure";

  ASSERT_TRUE(client.Connect("127.0.0.1", server.port, &error)) << error;
  attempts = 0;
  EXPECT_FALSE(client
                   .CallWithRetry(CountRequest("demo", kSmallQuery),
                                  FastRetry(3), &error, &attempts)
                   .has_value());
  EXPECT_EQ(attempts, 3) << "read-only commands retry to exhaustion";
}

TEST(ClientRetryTest, RetryAgainstRealDaemonAfterInjectedDrop) {
  ScopedFailpoints scoped;
  DaemonFixture fixture;
  Client client = fixture.Connect();
  // The daemon drops exactly one request read; the retry succeeds.
  failpoint::Trigger trigger;
  trigger.action = FailpointAction::kError;
  trigger.fire_count = 1;
  failpoint::Arm("daemon.recv", trigger);
  std::string error;
  int attempts = 0;
  auto response = client.CallWithRetry(CountRequest("demo", kSmallQuery),
                                       FastRetry(3), &error, &attempts);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->ok) << response->code;
  EXPECT_EQ(*response->Field("count"), "2");
  EXPECT_GE(attempts, 2);
}

}  // namespace
}  // namespace sharpcq
