// The sharpcqd daemon end to end: protocol round-trips, malformed and
// oversized frames, admission-control backpressure, and the request
// deadline/cancellation path — a deadline expiring mid-count must come
// back as DEADLINE_EXCEEDED (not a hang), and a client disconnecting
// mid-request must cancel the execution it abandoned. Runs under both
// sanitizers in CI (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algebra/exec_policy.h"
#include "count/enumeration.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "storage/catalog.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace sharpcq {
namespace {

using std::chrono::steady_clock;

std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "sharpcqd_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

ConjunctiveQuery Parse(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, nullptr, &error);
  EXPECT_TRUE(q.has_value()) << text << ": " << error;
  return *q;
}

// Random binary relation; with ~4000 edges over ~200 values, counting the
// 4-cycle with all variables free by backtracking takes ~30 seconds —
// far past every deadline used here, so expiry always lands mid-count.
Database MakeSlowDatabase() {
  Database db;
  std::mt19937 rng(42);
  std::uniform_int_distribution<Value> value(0, 199);
  for (int i = 0; i < 4000; ++i) db.AddTuple("r", {value(rng), value(rng)});
  db.DedupAll();
  return db;
}

const char kSlowQuery[] = "Q(A,B,C,D) <- r(A,B), r(B,C), r(C,D), r(D,A)";

double MsSince(steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                   start)
      .count();
}

// --- protocol round-trips ----------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.command = "count";
  request.args = {{"db", "demo"}, {"deadline_ms", "250"}};
  request.body = "Q(X) <- r(X,Y)\n";
  std::string error;
  auto parsed = ParseRequest(SerializeRequest(request), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->command, "count");
  ASSERT_NE(parsed->Arg("db"), nullptr);
  EXPECT_EQ(*parsed->Arg("db"), "demo");
  ASSERT_NE(parsed->Arg("deadline_ms"), nullptr);
  EXPECT_EQ(*parsed->Arg("deadline_ms"), "250");
  EXPECT_EQ(parsed->Arg("missing"), nullptr);
  EXPECT_EQ(parsed->body, request.body);
}

TEST(ProtocolTest, RequestParseRejectsMalformedHeaders) {
  std::string error;
  EXPECT_FALSE(ParseRequest("", &error).has_value());
  EXPECT_FALSE(ParseRequest("\nbody", &error).has_value());
  EXPECT_FALSE(ParseRequest("count bare_token\n", &error).has_value());
  EXPECT_FALSE(ParseRequest("count =value\n", &error).has_value());
  // Values may contain '='; the split is on the first one.
  auto ok = ParseRequest("count k=a=b\n", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(*ok->Arg("k"), "a=b");
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response = OkResponse();
  response.Add("count", "42");
  response.Add("method", "#-hypertree(k=2)");
  response.body = "r 2 4\ns 2 4\n";
  std::string error;
  auto parsed = ParseResponse(SerializeResponse(response), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->ok);
  ASSERT_NE(parsed->Field("count"), nullptr);
  EXPECT_EQ(*parsed->Field("count"), "42");
  EXPECT_EQ(*parsed->Field("method"), "#-hypertree(k=2)");
  EXPECT_EQ(parsed->body, response.body);

  Response failure = ErrorResponse(wire::kDeadlineExceeded,
                                   "deadline of 20ms expired");
  failure.Add("method", "interrupted");
  auto reparsed = ParseResponse(SerializeResponse(failure), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_FALSE(reparsed->ok);
  EXPECT_EQ(reparsed->code, wire::kDeadlineExceeded);
  EXPECT_EQ(reparsed->message, "deadline of 20ms expired");
  EXPECT_EQ(*reparsed->Field("method"), "interrupted");
}

TEST(ProtocolTest, ResponseParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ParseResponse("", &error).has_value());
  EXPECT_FALSE(ParseResponse("okay\n", &error).has_value());
  EXPECT_FALSE(ParseResponse("error \n", &error).has_value());
  EXPECT_FALSE(ParseResponse("ok\nno-colon-line\n", &error).has_value());
}

// --- cancellation substrate --------------------------------------------------

TEST(CancelTokenTest, CancelWinsOverDeadlineAndVerdictLatches) {
  CancelToken token;
  EXPECT_EQ(token.ShouldStop(), CancelToken::StopReason::kNone);
  token.SetDeadlineAfter(std::chrono::nanoseconds(0));
  EXPECT_EQ(token.ShouldStop(), CancelToken::StopReason::kDeadline);
  // The deadline verdict latches; a later Cancel still wins the report
  // because explicit cancellation is the stronger signal.
  token.Cancel();
  EXPECT_EQ(token.ShouldStop(), CancelToken::StopReason::kCancelled);
  EXPECT_TRUE(token.stop_requested());
}

TEST(MorselCancelTest, ParallelClaimLoopStopsWithinAFewMorsels) {
  ThreadPool pool(4);
  CancelToken token;
  ExecStats stats;
  ExecPolicy policy;
  policy.pool = [&pool] { return &pool; };
  policy.morsel_rows = 64;
  policy.row_threshold = 64;
  policy.cancel = &token;
  policy.stats = &stats;
  ExecScope scope(policy);

  const std::size_t rows = 64 * 1024;
  MorselPlan plan = PlanMorsels(rows);
  ASSERT_GT(plan.chunks, 100u);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      RunMorsels(plan, rows,
                 [&](std::size_t, std::size_t, std::size_t) {
                   if (executed.fetch_add(1) == 0) token.Cancel();
                 }),
      ExecInterrupted);
  // Every runner may have had one morsel in flight when the token flipped,
  // but the claim loop must not keep executing bodies afterwards.
  EXPECT_LE(executed.load(), 16u) << "of " << plan.chunks << " chunks";
}

TEST(MorselCancelTest, SequentialExecutionChunksWhenTokenInstalled) {
  CancelToken token;
  ExecPolicy policy;  // no pool
  policy.morsel_rows = 128;
  policy.row_threshold = 128;
  policy.cancel = &token;
  ExecScope scope(policy);

  const std::size_t rows = 4096;
  MorselPlan plan = PlanMorsels(rows);
  EXPECT_FALSE(plan.parallel);
  ASSERT_GT(plan.chunks, 1u) << "cancel token must force chunking";
  std::size_t executed = 0;
  EXPECT_THROW(RunMorsels(plan, rows,
                          [&](std::size_t, std::size_t, std::size_t) {
                            ++executed;
                            token.Cancel();
                          }),
               ExecInterrupted);
  EXPECT_EQ(executed, 1u);
}

TEST(EngineCancelTest, PreCancelledTokenReturnsCancelledWithoutExecuting) {
  Database db;
  db.AddTuple("r", {1, 2});
  CountingEngine engine;
  CancelToken token;
  token.Cancel();
  CountResult result = engine.Count(Parse("Q(X) <- r(X,Y)"), db,
                                    engine.options().planner, &token);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, CountStatus::kCancelled);
  EXPECT_STREQ(CountStatusName(result.status), "CANCELLED");
}

TEST(EngineCancelTest, DeadlineExpiryMidBacktrackingReturnsDeadlineExceeded) {
  Database db = MakeSlowDatabase();
  CountingEngine engine;
  auto planner = PlannerOptionsForStrategy("backtracking",
                                           engine.options().planner);
  ASSERT_TRUE(planner.has_value());
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::milliseconds(20));
  auto start = steady_clock::now();
  CountResult result = engine.Count(Parse(kSlowQuery), db, *planner, &token);
  double elapsed_ms = MsSince(start);
  EXPECT_EQ(result.status, CountStatus::kDeadlineExceeded);
  EXPECT_EQ(result.method, "interrupted");
  // The point of the checkpoints: expiry stops the execution promptly
  // instead of letting a many-second count run to completion.
  EXPECT_LT(elapsed_ms, 5000.0);
  // A null token still runs to completion on a small instance.
  Database small;
  small.AddTuple("r", {1, 2});
  small.AddTuple("r", {2, 1});
  CountResult full =
      engine.Count(Parse(kSlowQuery), small, *planner, nullptr);
  EXPECT_TRUE(full.ok());
  EXPECT_EQ(full.count, CountInt{2});  // 1-2-1-2 and 2-1-2-1
}

// --- daemon ------------------------------------------------------------------

// Seeds `root` with a demo database (the 2-cycle) and a slow one (the
// random relation above), so daemon tests can count both fast and long.
void SeedCatalog(const std::string& root) {
  Catalog catalog(root);
  Status error;
  Database demo;
  demo.AddTuple("r", {1, 2});
  demo.AddTuple("r", {2, 3});
  demo.AddTuple("r", {3, 1});
  demo.AddTuple("s", {1, 10});
  demo.AddTuple("s", {2, 20});
  ASSERT_TRUE(catalog.Ingest("demo", demo, nullptr, &error).has_value())
      << error;
  ASSERT_TRUE(
      catalog.Ingest("slow", MakeSlowDatabase(), nullptr, &error).has_value())
      << error;
}

struct DaemonFixture {
  explicit DaemonFixture(DaemonOptions options = {}) {
    options.catalog_root = MakeScratchDir();
    SeedCatalog(options.catalog_root);
    daemon = std::make_unique<Daemon>(std::move(options));
    std::string error;
    EXPECT_TRUE(daemon->Start(&error)) << error;
  }
  ~DaemonFixture() { daemon->Stop(); }

  Client Connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", daemon->port(), &error)) << error;
    return client;
  }

  std::unique_ptr<Daemon> daemon;
};

Request CountRequest(const std::string& db, const std::string& query) {
  Request request;
  request.command = "count";
  request.args.emplace_back("db", db);
  request.body = query;
  return request;
}

TEST(DaemonTest, CountIngestInspectStatusRoundTrip) {
  DaemonFixture fixture;
  Client client = fixture.Connect();
  std::string error;

  auto counted =
      client.Call(CountRequest("demo", "Q(X,Z) <- r(X,Y), s(Y,Z)"), &error);
  ASSERT_TRUE(counted.has_value()) << error;
  ASSERT_TRUE(counted->ok) << counted->code << " " << counted->message;
  EXPECT_EQ(*counted->Field("count"), "2");  // (1,20) and (3,10)
  EXPECT_NE(counted->Field("method"), nullptr);
  EXPECT_NE(counted->Field("cache_shard"), nullptr);
  EXPECT_NE(counted->Field("planner_ms"), nullptr);
  EXPECT_EQ(*counted->Field("generation"), "1");

  Request ingest;
  ingest.command = "ingest";
  ingest.args = {{"db", "demo"}, {"relation", "t"}};
  ingest.body = "10,11\n11,12\n";
  auto ingested = client.Call(ingest, &error);
  ASSERT_TRUE(ingested.has_value()) << error;
  ASSERT_TRUE(ingested->ok) << ingested->code << " " << ingested->message;
  EXPECT_EQ(*ingested->Field("generation"), "2");
  EXPECT_EQ(*ingested->Field("tuples"), "2");

  auto recount =
      client.Call(CountRequest("demo", "Q(X,Z) <- t(X,Y), t(Y,Z)"), &error);
  ASSERT_TRUE(recount.has_value()) << error;
  ASSERT_TRUE(recount->ok) << recount->code << " " << recount->message;
  EXPECT_EQ(*recount->Field("count"), "1");
  EXPECT_EQ(*recount->Field("generation"), "2");

  Request inspect;
  inspect.command = "inspect";
  inspect.args.emplace_back("db", "demo");
  auto inspected = client.Call(inspect, &error);
  ASSERT_TRUE(inspected.has_value()) << error;
  ASSERT_TRUE(inspected->ok);
  EXPECT_EQ(*inspected->Field("relations"), "3");
  EXPECT_NE(inspected->body.find("r 2 3"), std::string::npos)
      << inspected->body;

  Request status;
  status.command = "status";
  auto state = client.Call(status, &error);
  ASSERT_TRUE(state.has_value()) << error;
  ASSERT_TRUE(state->ok);
  EXPECT_EQ(*state->Field("responses_error"), "0");
  EXPECT_NE(state->Field("databases")->find("demo"), std::string::npos);
  EXPECT_NE(state->Field("databases")->find("slow"), std::string::npos);
}

TEST(DaemonTest, CountErrorsCarryDistinctCodes) {
  DaemonFixture fixture;
  Client client = fixture.Connect();
  std::string error;

  auto missing = client.Call(CountRequest("nosuchdb", "Q(X) <- r(X,Y)"),
                             &error);
  ASSERT_TRUE(missing.has_value()) << error;
  EXPECT_EQ(missing->code, wire::kNotFound);

  auto bad_query = client.Call(CountRequest("demo", "Q(X,,Y) <- r(X,Y)"),
                               &error);
  ASSERT_TRUE(bad_query.has_value()) << error;
  EXPECT_EQ(bad_query->code, wire::kParseError);
  EXPECT_NE(bad_query->message.find("empty argument position"),
            std::string::npos);

  Request bad_csv;
  bad_csv.command = "ingest";
  bad_csv.args = {{"db", "demo"}, {"relation", "bad"}};
  bad_csv.body = "1,,3\n";
  auto rejected = client.Call(bad_csv, &error);
  ASSERT_TRUE(rejected.has_value()) << error;
  EXPECT_EQ(rejected->code, wire::kParseError);
  EXPECT_NE(rejected->message.find("line 1, column 2"), std::string::npos)
      << rejected->message;

  Request unknown;
  unknown.command = "frobnicate";
  auto unhandled = client.Call(unknown, &error);
  ASSERT_TRUE(unhandled.has_value()) << error;
  EXPECT_EQ(unhandled->code, wire::kUnknownCommand);
}

TEST(DaemonTest, MalformedFrameGetsBadRequestAndConnectionSurvives) {
  DaemonFixture fixture;
  Client client = fixture.Connect();
  std::string error;
  ASSERT_TRUE(client.SendFramed("", &error)) << error;
  auto response = client.Receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->code, wire::kBadRequest);

  ASSERT_TRUE(client.SendFramed("count bare_token\n", &error)) << error;
  response = client.Receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->code, wire::kBadRequest);

  // The same connection still serves well-formed requests afterwards.
  auto counted =
      client.Call(CountRequest("demo", "Q(X,Y) <- r(X,Y)"), &error);
  ASSERT_TRUE(counted.has_value()) << error;
  EXPECT_TRUE(counted->ok);
  EXPECT_EQ(*counted->Field("count"), "3");
}

TEST(DaemonTest, OversizedFrameRejectedThenConnectionDropped) {
  DaemonOptions options;
  options.max_frame_bytes = 1024;
  DaemonFixture fixture(std::move(options));
  Client client = fixture.Connect();
  std::string error;
  // Announce a 1 MiB frame without sending its payload: the daemon must
  // answer FRAME_TOO_LARGE on the header alone and drop the connection
  // (the unread payload makes resync impossible).
  const char header[4] = {0x00, 0x10, 0x00, 0x00};
  ASSERT_TRUE(client.SendRaw(std::string_view(header, 4), &error)) << error;
  auto response = client.Receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->code, wire::kFrameTooLarge);
  EXPECT_FALSE(client.Receive(&error).has_value());
  EXPECT_EQ(fixture.daemon->stats().frames_too_large, 1u);
}

TEST(DaemonTest, MidFrameDisconnectLeavesDaemonHealthy) {
  DaemonFixture fixture;
  {
    Client client = fixture.Connect();
    std::string error;
    // Header promises 100 bytes; send 10 and vanish.
    const char header[4] = {0x00, 0x00, 0x00, 0x64};
    ASSERT_TRUE(client.SendRaw(std::string_view(header, 4), &error)) << error;
    ASSERT_TRUE(client.SendRaw("truncated!", &error)) << error;
  }
  Client fresh = fixture.Connect();
  std::string error;
  auto counted = fresh.Call(CountRequest("demo", "Q(X,Y) <- r(X,Y)"), &error);
  ASSERT_TRUE(counted.has_value()) << error;
  EXPECT_TRUE(counted->ok);
}

TEST(DaemonTest, DeadlineExpiryMidCountReturnsDeadlineExceeded) {
  DaemonFixture fixture;
  Client client = fixture.Connect();
  std::string error;
  Request request = CountRequest("slow", kSlowQuery);
  request.args.emplace_back("strategy", "backtracking");
  request.args.emplace_back("deadline_ms", "20");
  auto start = steady_clock::now();
  auto response = client.Call(request, &error);
  double elapsed_ms = MsSince(start);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, wire::kDeadlineExceeded);
  // Provenance still travels on the error: the operator sees what was
  // interrupted and where it was planned.
  ASSERT_NE(response->Field("method"), nullptr);
  EXPECT_EQ(*response->Field("method"), "interrupted");
  EXPECT_NE(response->Field("cache_shard"), nullptr);
  EXPECT_LT(elapsed_ms, 5000.0) << "deadline must interrupt, not hang";
  EXPECT_EQ(fixture.daemon->stats().deadline_exceeded, 1u);
}

TEST(DaemonTest, DisconnectMidCountCancelsTheExecution) {
  DaemonFixture fixture;
  std::string error;
  {
    Client client = fixture.Connect();
    Request request = CountRequest("slow", kSlowQuery);
    request.args.emplace_back("strategy", "backtracking");
    ASSERT_TRUE(client.Send(request, &error)) << error;
    // Give the daemon a moment to start executing, then vanish without
    // reading the response.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The disconnect watcher must notice the dead socket and cancel the
  // orphaned execution instead of letting it run for minutes.
  auto deadline = steady_clock::now() + std::chrono::seconds(20);
  while (fixture.daemon->stats().cancelled_disconnect == 0 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.daemon->stats().cancelled_disconnect, 1u);
  // The admission slot must have been released: a fresh request executes.
  Client fresh = fixture.Connect();
  auto counted = fresh.Call(CountRequest("demo", "Q(X,Y) <- r(X,Y)"), &error);
  ASSERT_TRUE(counted.has_value()) << error;
  EXPECT_TRUE(counted->ok);
}

TEST(DaemonTest, OverloadRejectsFastWhenQueueFull) {
  DaemonOptions options;
  options.max_inflight = 1;
  options.max_queued = 0;
  DaemonFixture fixture(std::move(options));
  std::string error;

  Client blocker = fixture.Connect();
  Request slow = CountRequest("slow", kSlowQuery);
  slow.args.emplace_back("strategy", "backtracking");
  ASSERT_TRUE(blocker.Send(slow, &error)) << error;

  // Wait until the slow count occupies the only admission slot (status
  // bypasses the gate, so it works under full load).
  Request status;
  status.command = "status";
  Client prober = fixture.Connect();
  auto admit_deadline = steady_clock::now() + std::chrono::seconds(20);
  bool admitted = false;
  while (!admitted && steady_clock::now() < admit_deadline) {
    auto state = prober.Call(status, &error);
    ASSERT_TRUE(state.has_value()) << error;
    admitted = *state->Field("inflight") == "1";
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(admitted);

  auto start = steady_clock::now();
  auto rejected =
      prober.Call(CountRequest("demo", "Q(X,Y) <- r(X,Y)"), &error);
  double elapsed_ms = MsSince(start);
  ASSERT_TRUE(rejected.has_value()) << error;
  EXPECT_EQ(rejected->code, wire::kOverloaded);
  // Backpressure means fast rejection, not queueing behind the blocker.
  EXPECT_LT(elapsed_ms, 2000.0);
  EXPECT_EQ(fixture.daemon->stats().rejected_overload, 1u);

  blocker.Close();  // the watcher cancels the blocked count during Stop
}

TEST(DaemonTest, ShutdownCommandUnblocksWait) {
  DaemonFixture fixture;
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    fixture.daemon->Wait();
    returned.store(true);
  });
  std::string error;
  Client client = fixture.Connect();
  Request shutdown;
  shutdown.command = "shutdown";
  auto acked = client.Call(shutdown, &error);
  ASSERT_TRUE(acked.has_value()) << error;
  EXPECT_TRUE(acked->ok);
  waiter.join();
  EXPECT_TRUE(returned.load());
  fixture.daemon->Stop();
}

}  // namespace
}  // namespace sharpcq
