#include <gtest/gtest.h>

#include "core/sharp_counting.h"
#include "core/sharp_decomposition.h"
#include "count/enumeration.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "solver/core.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

// --- #-hypertree width of the paper's queries --------------------------------

TEST(SharpWidthTest, Q0HasSharpHypertreeWidthTwo) {
  // Figure 3(c): width-2 #-hypertree decomposition; Q0's core is cyclic so
  // width 1 is impossible.
  EXPECT_EQ(SharpHypertreeWidth(MakeQ0(), 3), 2);
}

TEST(SharpWidthTest, Q1HasSharpHypertreeWidthTwo) {
  // Example 4.1 / Figure 8(e).
  EXPECT_EQ(SharpHypertreeWidth(MakeQ1(), 3), 2);
}

TEST(SharpWidthTest, Qn1HasSharpHypertreeWidthOne) {
  // Example A.2: the colored core is acyclic and its frontier is a single
  // variable, so #-htw = 1 for every n.
  for (int n : {2, 3, 4, 5}) {
    EXPECT_EQ(SharpHypertreeWidth(MakeQn1(n), 2), 1) << "n=" << n;
  }
}

TEST(SharpWidthTest, Qn2HasSharpHypertreeWidthOne) {
  // Theorem A.3: cores collapse the biclique to one atom; no free
  // variables, no frontier to cover.
  for (int n : {2, 3, 4}) {
    EXPECT_EQ(SharpHypertreeWidth(MakeQn2(n), 2), 1) << "n=" << n;
  }
}

TEST(SharpWidthTest, Qh2SharpWidthGrowsWithH) {
  // Example C.1: the frontier of the existential block is all of
  // {X0,...,Xh}; guards are binary w_i atoms plus r, so the width needed to
  // cover the frontier grows with h — the family has unbounded #-htw.
  std::optional<int> w1 = SharpHypertreeWidth(MakeQh2(1), 4);
  std::optional<int> w3 = SharpHypertreeWidth(MakeQh2(3), 4);
  ASSERT_TRUE(w1.has_value());
  ASSERT_TRUE(w3.has_value());
  EXPECT_LT(*w1, *w3);
  // And h = 5 needs width > 3.
  EXPECT_FALSE(SharpHypertreeWidth(MakeQh2(5), 3).has_value());
}

TEST(SharpWidthTest, QuantifierFreeQueriesReduceToPlainWidth) {
  // With no existential variables, FH adds only edges inside free(Q), so
  // #-htw = htw of the core. The 4-clique query (quantifier-free) has
  // width 2 (two edges cover all four vertices... each bag can take two
  // binary atoms, covering the 6 edges with a tree of 3-var bags).
  ConjunctiveQuery q = MakeCliqueQuery(3);
  EXPECT_EQ(SharpHypertreeWidth(q, 3), 2);
}

// --- #-decompositions w.r.t. arbitrary views (Definition 1.4) ---------------

TEST(SharpDecompositionTest, Q0IsSharpCoveredByV0) {
  // Example 3.5 / Figure 7(d): the view set V0 = {{A,B,I}, {B,E}, {B,C,D},
  // {D,F,H}} admits a #-decomposition for the F-branch core...
  ConjunctiveQuery q = MakeQ0();
  std::vector<IdSet> v0_edges = {
      VarsOf(q, {"A", "B", "I"}), VarsOf(q, {"B", "E"}),
      VarsOf(q, {"B", "C", "D"}), VarsOf(q, {"D", "F", "H"})};
  ViewSet v0 = ViewsFromEdges(v0_edges);
  auto d = FindSharpDecomposition(q, v0);
  ASSERT_TRUE(d.has_value());
  // ... and the chosen core must be the F-branch: the G-branch's triangle
  // {D,G,H} is not covered by any view.
  EXPECT_TRUE(d->core.AllVars().Contains(q.VarByName("F")));
  EXPECT_FALSE(d->core.AllVars().Contains(q.VarByName("G")));
}

TEST(SharpDecompositionTest, GBranchCoreFailsAgainstV0) {
  // The symmetric core (with G) admits no tree projection w.r.t. V0
  // (Example 3.5's point about cores not being interchangeable).
  ConjunctiveQuery q = MakeQ0();
  std::vector<IdSet> v0_edges = {
      VarsOf(q, {"A", "B", "I"}), VarsOf(q, {"B", "E"}),
      VarsOf(q, {"B", "C", "D"}), VarsOf(q, {"D", "F", "H"})};
  // Find the G-branch core among the enumerated cores.
  ConjunctiveQuery g_core = MakeQ0();
  bool found = false;
  for (const ConjunctiveQuery& core : EnumerateColoredCores(q, 8)) {
    if (core.AllVars().Contains(q.VarByName("G"))) {
      g_core = core;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  std::vector<IdSet> cover = SharpCoverEdges(g_core, q.free_vars());
  EXPECT_FALSE(
      FindTreeProjection(cover, ViewsFromEdges(v0_edges)).has_value());
}

TEST(SharpDecompositionTest, CoverEdgesIncludeFrontierAndSingletons) {
  ConjunctiveQuery q = MakeQ1();
  // Q1 is a core; FH(Q1, {A,C}) contains {A,C} (Figure 8(c)).
  std::vector<IdSet> cover = SharpCoverEdges(q, q.free_vars());
  EXPECT_TRUE(HasEdge(cover, VarsOf(q, {"A", "C"})));
  EXPECT_TRUE(HasEdge(cover, VarsOf(q, {"A"})));
  EXPECT_TRUE(HasEdge(cover, VarsOf(q, {"C"})));
}

TEST(SharpDecompositionTest, WidthOneViewsFailOnQ1) {
  // No single atom covers the frontier edge {A,C}.
  EXPECT_FALSE(FindSharpHypertreeDecomposition(MakeQ1(), 1).has_value());
}

// --- Theorem 3.7 / 1.3 counting ----------------------------------------------

TEST(SharpCountTest, Q0CountMatchesBruteForce) {
  ConjunctiveQuery q = MakeQ0();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Q0DatabaseParams params;
    params.seed = seed;
    Database db = MakeQ0Database(params);
    auto result = CountBySharpHypertree(q, db, 2);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->count, CountByBacktracking(q, db)) << "seed " << seed;
  }
}

TEST(SharpCountTest, Q1CountMatchesBruteForce) {
  ConjunctiveQuery q = MakeQ1();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Database db = MakeQ1Database(6, 14, seed);
    auto result = CountBySharpHypertree(q, db, 2);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->count, CountByBacktracking(q, db)) << "seed " << seed;
  }
}

TEST(SharpCountTest, WidthTooSmallReturnsNullopt) {
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(4, 8, 1);
  EXPECT_FALSE(CountBySharpHypertree(q, db, 1).has_value());
}

TEST(SharpCountTest, Qn1CountViaWidthOne) {
  for (int n : {2, 3, 4}) {
    ConjunctiveQuery q = MakeQn1(n);
    Database db = MakeQn1RandomDatabase(6, 16, 11 * n);
    auto result = CountBySharpHypertree(q, db, 1);
    ASSERT_TRUE(result.has_value()) << "n=" << n;
    EXPECT_EQ(result->count, CountByBacktracking(q, db)) << "n=" << n;
  }
}

TEST(SharpCountTest, Qn1CycleCountsExactlyD) {
  ConjunctiveQuery q = MakeQn1(4);
  Database db = MakeQn1CycleDatabase(9);
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{9});
}

TEST(SharpCountTest, BooleanBicliqueViaCore) {
  ConjunctiveQuery q = MakeQn2(3);
  Database db;
  db.AddTuple("r", {1, 2});
  auto result = CountBySharpHypertree(q, db, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{1});
  Database empty;
  empty.DeclareRelation("r", 2);
  auto zero = CountBySharpHypertree(q, empty, 1);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->count, CountInt{0});
}

TEST(SharpCountTest, EmptyDatabaseRelationGivesZero) {
  ConjunctiveQuery q = MakeQ1();
  Database db = MakeQ1Database(4, 6, 3);
  db.mutable_relation("s2") = Relation(2);  // empty one relation
  auto result = CountBySharpHypertree(q, db, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, CountInt{0});
}

TEST(SharpCountTest, CountAnswersFacadeFallsBackGracefully) {
  // Qh2 with h=3 has #-htw 4 (covering the frontier {X0..X3} takes the r
  // atom plus three w_i atoms); with max_width 2 the facade must fall back
  // and still return the right count.
  ConjunctiveQuery q = MakeQh2(3);
  Database db = MakeQh2Database(3);
  CountOptions options;
  options.max_width = 2;
  CountResult result = CountAnswers(q, db, options);
  EXPECT_EQ(result.count, CountInt{1} << 3);
  EXPECT_EQ(result.method, "backtracking");
  // With enough width the structural method kicks in.
  CountOptions wide;
  wide.max_width = 4;
  CountResult structural = CountAnswers(q, db, wide);
  EXPECT_EQ(structural.count, CountInt{1} << 3);
  EXPECT_NE(structural.method, "backtracking");
}

// Answers counted through the decomposition agree with brute force on
// random bounded-width instances (the Theorem 1.3 promise).
TEST(SharpCountTest, RandomInstancesAgreeWithBruteForce) {
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 6;
    qp.num_atoms = 5;
    qp.max_arity = 3;
    qp.num_free = 2;
    qp.num_relations = 3;
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 10;
    dp.seed = seed * 7919;
    Database db = MakeRandomDatabase(q, dp);

    auto result = CountBySharpHypertree(q, db, 3);
    if (!result.has_value()) continue;  // width promise not met
    ++counted;
    EXPECT_EQ(result->count, CountByBacktracking(q, db)) << "seed " << seed;
  }
  EXPECT_GT(counted, 20);
}

}  // namespace
}  // namespace sharpcq
