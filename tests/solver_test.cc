#include <gtest/gtest.h>

#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "solver/consistency.h"
#include "solver/core.h"
#include "solver/hom_target.h"
#include "solver/homomorphism.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {


// --- homomorphisms ----------------------------------------------------------

TEST(HomomorphismTest, PathMapsIntoEdge) {
  // r(X,Y), r(Y,Z) maps onto r(U,V), r(V,U) (fold onto a 2-cycle).
  ConjunctiveQuery path;
  path.AddAtomVars("r", {"X", "Y"});
  path.AddAtomVars("r", {"Y", "Z"});
  ConjunctiveQuery cycle;
  cycle.AddAtomVars("r", {"U", "V"});
  cycle.AddAtomVars("r", {"V", "U"});
  EXPECT_TRUE(MapsInto(path, cycle));
  // The 2-cycle does not map into the path (no cycle in the target).
  EXPECT_FALSE(MapsInto(cycle, path));
}

TEST(HomomorphismTest, RelationSymbolsMustMatch) {
  ConjunctiveQuery a;
  a.AddAtomVars("r", {"X", "Y"});
  ConjunctiveQuery b;
  b.AddAtomVars("s", {"U", "V"});
  EXPECT_FALSE(MapsInto(a, b));
}

TEST(HomomorphismTest, ConstantsArePreserved) {
  ConjunctiveQuery a;
  VarId x = a.InternVar("X");
  a.AddAtom("r", {Term::Var(x), Term::Const(7)});
  ConjunctiveQuery b;
  VarId u = b.InternVar("U");
  b.AddAtom("r", {Term::Var(u), Term::Const(7)});
  ConjunctiveQuery c;
  VarId w = c.InternVar("W");
  c.AddAtom("r", {Term::Var(w), Term::Const(8)});
  EXPECT_TRUE(MapsInto(a, b));
  EXPECT_FALSE(MapsInto(a, c));
}

TEST(HomomorphismTest, ColorsPinFreeVariables) {
  // Without colors, the 4-path folds onto a single edge; with colors on the
  // endpoints it cannot.
  ConjunctiveQuery path;
  path.AddAtomVars("r", {"X", "Y"});
  path.AddAtomVars("r", {"Y", "Z"});
  path.SetFreeByName({"X", "Z"});
  ConjunctiveQuery colored = path.Colored();
  ConjunctiveQuery reduced = colored.WithoutAtom(0);
  EXPECT_FALSE(MapsInto(colored, reduced));
}

TEST(HomomorphismTest, ForcedAssignmentRestrictsSearch) {
  ConjunctiveQuery a;
  a.AddAtomVars("r", {"X", "Y"});
  ConjunctiveQuery b;
  b.AddAtomVars("r", {"U", "V"});
  QueryTarget target(b);
  Homomorphism forced;
  forced[a.VarByName("X")] = static_cast<std::int64_t>(b.VarByName("V"));
  // Forcing X -> V leaves no way to satisfy r(X,Y): V has no outgoing edge.
  EXPECT_FALSE(HomomorphismExists(a, target, forced));
}

TEST(HomomorphismTest, HomEquivalentQueries) {
  ConjunctiveQuery q = MakeQn1(3);
  ConjunctiveQuery core = ComputeColoredCore(q);
  EXPECT_TRUE(HomEquivalent(q.Colored(), core.Colored()));
}

// --- cores ------------------------------------------------------------------

TEST(CoreTest, TriangleIsItsOwnCore) {
  ConjunctiveQuery tri;
  tri.AddAtomVars("e", {"X", "Y"});
  tri.AddAtomVars("e", {"Y", "Z"});
  tri.AddAtomVars("e", {"Z", "X"});
  EXPECT_EQ(ComputeCoreSubquery(tri).NumAtoms(), 3u);
}

TEST(CoreTest, DoubledEdgeCollapses) {
  ConjunctiveQuery q;
  q.AddAtomVars("e", {"X", "Y"});
  q.AddAtomVars("e", {"U", "V"});
  EXPECT_EQ(ComputeCoreSubquery(q).NumAtoms(), 1u);
}

TEST(CoreTest, Q0ColoredCoreDropsOneBranch) {
  // Figure 3(a) / Example 3.5: the core of color(Q0) drops one of the two
  // symmetric subtask branches — either st(D,G), rr(G,H) (keeping F, the
  // core drawn in the paper) or st(D,F), rr(F,H) (its symmetric twin).
  ConjunctiveQuery q = MakeQ0();
  ConjunctiveQuery core = ComputeColoredCore(q);
  EXPECT_EQ(core.NumAtoms(), 7u);
  bool has_f = core.AllVars().Contains(q.VarByName("F"));
  bool has_g = core.AllVars().Contains(q.VarByName("G"));
  EXPECT_NE(has_f, has_g);  // exactly one branch survives
  // All free variables survive.
  EXPECT_TRUE(q.free_vars().IsSubsetOf(core.AllVars()));
  // The surviving atoms include exactly one st and two rr atoms.
  int st = 0, rr = 0;
  for (const Atom& a : core.atoms()) {
    st += a.relation == "st" ? 1 : 0;
    rr += a.relation == "rr" ? 1 : 0;
  }
  EXPECT_EQ(st, 1);
  EXPECT_EQ(rr, 2);
}

TEST(CoreTest, Qn1ColoredCoreIsChainPlusPendant) {
  // Example A.2 / Figure 11(b): the core keeps the X-chain and one pendant
  // r(Xn, Yn); all other Y variables vanish.
  const int n = 4;
  ConjunctiveQuery q = MakeQn1(n);
  ConjunctiveQuery core = ComputeColoredCore(q);
  EXPECT_EQ(core.NumAtoms(), static_cast<std::size_t>(n - 1 + 1));
  IdSet vars = core.AllVars();
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE(vars.Contains(q.VarByName("X" + std::to_string(i))));
  }
  int y_count = 0;
  for (int i = 1; i <= n; ++i) {
    y_count += vars.Contains(q.VarByName("Y" + std::to_string(i))) ? 1 : 0;
  }
  EXPECT_EQ(y_count, 1);
}

TEST(CoreTest, Qn2ColoredCoreIsSingleAtom) {
  // Theorem A.3: the core of the Boolean biclique query is one atom.
  ConjunctiveQuery q = MakeQn2(3);
  EXPECT_EQ(ComputeColoredCore(q).NumAtoms(), 1u);
}

TEST(CoreTest, CoreIsHomEquivalentToQuery) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomQueryParams p;
    p.num_vars = 5;
    p.num_atoms = 5;
    p.max_arity = 2;
    p.num_free = 1;
    p.num_relations = 2;
    p.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(p);
    ConjunctiveQuery colored = q.Colored();
    ConjunctiveQuery core_colored = ComputeCoreSubquery(colored);
    EXPECT_TRUE(HomEquivalent(colored, core_colored)) << "seed " << seed;
    // Minimality: no further atom is deletable.
    for (std::size_t i = 0; i < core_colored.NumAtoms(); ++i) {
      EXPECT_FALSE(HomomorphismExists(
          core_colored, QueryTarget(core_colored.WithoutAtom(i))))
          << "seed " << seed << " atom " << i;
    }
  }
}

TEST(CoreTest, EnumerateColoredCoresFindsBothQ0Cores) {
  // Example 3.5: Q0 has two symmetric substructure cores (the F-branch and
  // the G-branch).
  ConjunctiveQuery q = MakeQ0();
  std::vector<ConjunctiveQuery> cores = EnumerateColoredCores(q, 8);
  EXPECT_EQ(cores.size(), 2u);
  bool has_f = false, has_g = false;
  for (const ConjunctiveQuery& core : cores) {
    if (core.AllVars().Contains(q.VarByName("F"))) has_f = true;
    if (core.AllVars().Contains(q.VarByName("G"))) has_g = true;
  }
  EXPECT_TRUE(has_f);
  EXPECT_TRUE(has_g);
}

TEST(CoreTest, EnumerationRespectsCap) {
  ConjunctiveQuery q = MakeQ0();
  EXPECT_EQ(EnumerateColoredCores(q, 1).size(), 1u);
}

// --- Lemma 4.3: consistency-based oracle ------------------------------------

TEST(ConsistencyOracleTest, AgreesWithExactOnRandomQueries) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RandomQueryParams p;
    p.num_vars = 5;
    p.num_atoms = 4;
    p.max_arity = 2;
    p.num_relations = 2;
    p.force_acyclic = true;  // acyclic cores have width 1: oracle is exact
    p.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(p);
    for (std::size_t i = 0; i < q.NumAtoms(); ++i) {
      ConjunctiveQuery reduced = q.WithoutAtom(i);
      bool exact = HomomorphismExists(q, QueryTarget(reduced));
      bool via_consistency = HomomorphismExistsViaConsistency(q, reduced, 2);
      EXPECT_EQ(exact, via_consistency) << "seed " << seed << " atom " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST(ConsistencyOracleTest, Lemma43CoreMatchesExactCore) {
  // Q0's colored core has generalized hypertree width 2, so the k=2
  // consistency oracle computes the same core as the exact oracle.
  ConjunctiveQuery q = MakeQ0();
  ConjunctiveQuery exact = ComputeColoredCore(q);
  ConjunctiveQuery via = ComputeColoredCoreViaConsistency(q, 2);
  EXPECT_EQ(exact.NumAtoms(), via.NumAtoms());
  EXPECT_TRUE(HomEquivalent(exact.Colored(), via.Colored()));
}

// --- pairwise consistency ---------------------------------------------------

TEST(PairwiseConsistencyTest, PropagatesEmptiness) {
  VarRelation a(IdSet{0, 1});
  a.rel().AddRow({1, 2});
  VarRelation b(IdSet{1, 2});  // empty
  std::vector<VarRelation> views{a, b};
  EXPECT_FALSE(EnforcePairwiseConsistency(&views));
}

TEST(PairwiseConsistencyTest, ReachesFixpointAcrossChain) {
  // r(0,1) = {(1,2),(5,6)}, r(1,2) = {(2,3)}, r(2,3) = {(3,4)}:
  // only the 1-2-3-4 chain survives.
  VarRelation a(IdSet{0, 1});
  a.rel().AddRow({1, 2});
  a.rel().AddRow({5, 6});
  VarRelation b(IdSet{1, 2});
  b.rel().AddRow({2, 3});
  VarRelation c(IdSet{2, 3});
  c.rel().AddRow({3, 4});
  std::vector<VarRelation> views{a, b, c};
  ASSERT_TRUE(EnforcePairwiseConsistency(&views));
  EXPECT_EQ(views[0].size(), 1u);
  EXPECT_TRUE(views[0].rel().ContainsRow(std::vector<Value>{1, 2}));
}

}  // namespace
}  // namespace sharpcq
