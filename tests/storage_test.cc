// The storage subsystem (ISSUE 4): snapshot round-trips must preserve
// counts under every strategy and both load modes, corruption must fail
// loudly (never UB — this suite runs under ASan in CI), writes must be
// byte-deterministic, and the catalog must swap generations atomically
// while keeping the per-database plan cache warm.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/stats.h"
#include "algebra/table.h"
#include "count/enumeration.h"
#include "data/csv.h"
#include "engine/engine.h"
#include "gen/paper_queries.h"
#include "gen/random_gen.h"
#include "query/atom_relation.h"
#include "query/parser.h"
#include "storage/catalog.h"
#include "storage/mem_map.h"
#include "storage/snapshot.h"

namespace sharpcq {
namespace {

// A fresh scratch directory per test; contents are left for inspection on
// failure (the OS tmpdir reaper collects them).
std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "sharpcq_storage_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- round-trip property test ----------------------------------------------

TEST(SnapshotRoundTripTest, RandomInstancesAgreeUnderEveryStrategy) {
  const std::string dir = MakeScratchDir();
  CountingEngine engine;
  const char* kStrategies[] = {"auto", "sharp", "ps13", "hybrid",
                               "backtracking"};
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 110; ++seed) {
    RandomQueryParams qp;
    qp.num_vars = 4 + static_cast<int>(seed % 3);
    qp.num_atoms = 3 + static_cast<int>(seed % 3);
    qp.max_arity = 2 + static_cast<int>(seed % 2);
    qp.num_free = 1 + static_cast<int>(seed % 3);
    qp.num_relations = 2 + static_cast<int>(seed % 3);
    qp.force_acyclic = (seed % 2 == 0);
    qp.seed = seed;
    ConjunctiveQuery q = MakeRandomQuery(qp);
    RandomDatabaseParams dp;
    dp.domain = 3;
    dp.tuples_per_relation = 8 + static_cast<int>(seed % 5);
    dp.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
    Database db = MakeRandomDatabase(q, dp);

    const CountInt expected = engine.Count(q, db).count;

    const std::string path = dir + "/rt_" + std::to_string(seed) + ".sharpcq";
    Status error;
    auto stats = WriteSnapshot(db, nullptr, path, &error);
    ASSERT_TRUE(stats.has_value()) << error;

    auto owned = LoadSnapshot(path, SnapshotLoadMode::kOwned, &error);
    ASSERT_TRUE(owned.has_value()) << "seed " << seed << ": " << error;
    auto mapped = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
    ASSERT_TRUE(mapped.has_value()) << "seed " << seed << ": " << error;

    EXPECT_EQ(owned->db.TotalTuples(), mapped->db.TotalTuples());

    EXPECT_EQ(engine.Count(q, owned->db).count, expected) << "seed " << seed;
    for (const char* strategy : kStrategies) {
      auto options =
          PlannerOptionsForStrategy(strategy, engine.options().planner);
      ASSERT_TRUE(options.has_value());
      CountResult result = engine.Count(q, mapped->db, *options);
      EXPECT_EQ(result.count, expected)
          << "seed " << seed << " strategy " << strategy << " via "
          << result.method;
    }
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

// --- determinism -----------------------------------------------------------

TEST(SnapshotWriterTest, ByteStableAcrossInsertionOrders) {
  const std::string dir = MakeScratchDir();
  Database forward;
  Database shuffled;
  // Same logical database, different relation and row insertion orders
  // (plus a duplicate row the writer must collapse).
  forward.AddTuple("r", {1, 2});
  forward.AddTuple("r", {3, 4});
  forward.AddTuple("s", {7});
  shuffled.AddTuple("s", {7});
  shuffled.AddTuple("r", {3, 4});
  shuffled.AddTuple("r", {1, 2});
  shuffled.AddTuple("r", {3, 4});

  Status error;
  ASSERT_TRUE(
      WriteSnapshot(forward, nullptr, dir + "/a.sharpcq", &error).has_value())
      << error;
  ASSERT_TRUE(
      WriteSnapshot(shuffled, nullptr, dir + "/b.sharpcq", &error).has_value())
      << error;
  EXPECT_EQ(ReadFileBytes(dir + "/a.sharpcq"),
            ReadFileBytes(dir + "/b.sharpcq"));
}

TEST(SnapshotWriterTest, V2FilesAreByteDeterministic) {
  // The stats section aggregates through a hash map; the bytes must still
  // be independent of iteration order (aggregates, not sequences).
  const std::string dir = MakeScratchDir();
  Status error;
  for (int trial = 0; trial < 2; ++trial) {
    Database db;
    for (int i = 0; i < 64; ++i) {
      db.AddTuple("e", {(i * 7) % 16, i});
      db.AddTuple("f", {i % 4});
    }
    ASSERT_TRUE(WriteSnapshot(db, nullptr,
                              dir + "/t" + std::to_string(trial) + ".sharpcq",
                              &error)
                    .has_value())
        << error;
  }
  EXPECT_EQ(ReadFileBytes(dir + "/t0.sharpcq"),
            ReadFileBytes(dir + "/t1.sharpcq"));
}

TEST(SnapshotWriterTest, SortedRelationNamesIsSortedAndComplete) {
  Database db;
  db.AddTuple("zeta", {1});
  db.AddTuple("alpha", {2});
  db.AddTuple("mid", {3});
  EXPECT_EQ(db.SortedRelationNames(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- dictionary round trip -------------------------------------------------

TEST(SnapshotRoundTripTest, ValueDictSurvives) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/dict.sharpcq";
  Database db;
  ValueDict dict;
  db.AddTuple("works_on", {dict.Intern("alice"), dict.Intern("project_x")});
  db.AddTuple("works_on", {dict.Intern("bob"), dict.Intern("project_x")});

  Status error;
  ASSERT_TRUE(WriteSnapshot(db, &dict, path, &error).has_value()) << error;
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->dict.size(), dict.size());
  ASSERT_TRUE(loaded->dict.Find("alice").has_value());
  EXPECT_EQ(*loaded->dict.Find("alice"), *dict.Find("alice"));
  EXPECT_EQ(loaded->dict.NameOf(*dict.Find("project_x")), "project_x");

  // Counting through the reloaded dictionary: who works on project_x?
  auto q = ParseQuery("Q(W) <- works_on(W, 'project_x')", &loaded->dict);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(CountingEngine().Count(*q, loaded->db).count, CountInt{2});
}

// --- zero-copy contract ----------------------------------------------------

TEST(SnapshotMappedTest, TablesAliasTheMappingAndAtomBridgeStaysZeroCopy) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/zc.sharpcq";
  Database db;
  for (int i = 0; i < 16; ++i) {
    db.AddTuple("e", {i, (i + 1) % 16});
  }
  Status error;
  ASSERT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  std::shared_ptr<const Table> backing = loaded->db.ColumnarBacking("e");
  ASSERT_NE(backing, nullptr);
  EXPECT_TRUE(backing->is_external());
  EXPECT_EQ(backing->rows(), 16u);

  // A plain atom over the mapped relation aliases the same buffers: the
  // bridge does not copy tuple data, only permutes column views.
  auto q = ParseQuery("Q(X,Y) <- e(X,Y)");
  ASSERT_TRUE(q.has_value());
  Rel rel = AtomToRel(q->atoms()[0], loaded->db);
  EXPECT_TRUE(rel.table()->is_external());
  EXPECT_EQ(rel.table()->Column(0).data(), backing->Column(0).data());

  // A constrained atom (repeated variable) must filter, not alias.
  auto loops = ParseQuery("L(X) <- e(X,X)");
  ASSERT_TRUE(loops.has_value());
  Rel loop_rel = AtomToRel(loops->atoms()[0], loaded->db);
  EXPECT_EQ(loop_rel.size(), 0u);
}

TEST(SnapshotMappedTest, MappingOutlivesTheLoadedDatabase) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/lifetime.sharpcq";
  Database db;
  db.AddTuple("e", {1, 2});
  db.AddTuple("e", {2, 3});
  Status error;
  ASSERT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;

  // Keep only a table handle; the LoadedSnapshot (and its Database) die.
  std::shared_ptr<const Table> survivor;
  {
    auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    survivor = loaded->db.ColumnarBacking("e");
  }
  // The arena shared_ptr keeps the mapping alive: reads stay valid (ASan
  // would flag a use-after-munmap here).
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->rows(), 2u);
  EXPECT_EQ(survivor->at(0, 0) + survivor->at(1, 0), 3);
}

// --- lazy materialization --------------------------------------------------

TEST(ColumnarDatabaseTest, LazyMaterializationMatchesBacking) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/mat.sharpcq";
  Database db;
  db.AddTuple("r", {5, 6});
  db.AddTuple("r", {1, 2});
  Status error;
  ASSERT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  // relation() materializes a row-major copy of the mapped columns.
  const Relation& rel = loaded->db.relation("r");
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.ContainsRow(std::vector<Value>{5, 6}));
  EXPECT_EQ(loaded->db.TotalTuples(), 2u);  // not double counted

  // Mutable access drops the columnar backing so the two forms cannot
  // diverge.
  loaded->db.AddTuple("r", {9, 9});
  EXPECT_EQ(loaded->db.ColumnarBacking("r"), nullptr);
  EXPECT_EQ(loaded->db.relation("r").size(), 3u);
  EXPECT_EQ(loaded->db.TotalTuples(), 3u);
}

TEST(ColumnarDatabaseTest, ConcurrentCountsAndMaterializationAreSafe) {
  // A mapped database under concurrent batch counting plus direct
  // relation() materialization from several threads: the sanitizer CI jobs
  // run this suite, so a race in the lazy-materialization path would trip
  // TSan here.
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/conc.sharpcq";
  Database source;
  for (int i = 0; i < 64; ++i) {
    source.AddTuple("e", {i % 8, (i * 3) % 8});
    source.AddTuple("f", {(i * 5) % 8, i % 8});
  }
  Status error;
  ASSERT_TRUE(WriteSnapshot(source, nullptr, path, &error).has_value())
      << error;
  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  auto q = ParseQuery("Q(X,Z) <- e(X,Y), f(Y,Z)");
  ASSERT_TRUE(q.has_value());
  EngineOptions options;
  options.batch_threads = 4;
  CountingEngine engine(options);
  const CountInt expected = engine.Count(*q, loaded->db).count;

  std::vector<CountJob> jobs(16, CountJob{*q, &loaded->db});
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&loaded, t] {
      const Relation& rel = loaded->db.relation(t % 2 == 0 ? "e" : "f");
      EXPECT_GT(rel.size(), 0u);
    });
  }
  std::vector<CountResult> results = engine.CountBatch(jobs);
  for (std::thread& reader : readers) reader.join();
  for (const CountResult& result : results) {
    EXPECT_EQ(result.count, expected);
  }
}

// --- corruption ------------------------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeScratchDir();
    path_ = dir_ + "/victim.sharpcq";
    Database db;
    for (int i = 0; i < 32; ++i) db.AddTuple("e", {i, i * 7 % 13});
    Status error;
    ASSERT_TRUE(WriteSnapshot(db, nullptr, path_, &error).has_value())
        << error;
    pristine_ = ReadFileBytes(path_);
    ASSERT_GT(pristine_.size(), kSnapshotHeaderBytes);
  }

  // Both load modes and the verifier must reject the current file.
  void ExpectRejected(const std::string& label) {
    Status error;
    EXPECT_FALSE(
        LoadSnapshot(path_, SnapshotLoadMode::kOwned, &error).has_value())
        << label;
    EXPECT_FALSE(error.ok()) << label;
    EXPECT_FALSE(VerifySnapshot(path_, &error)) << label;
  }

  std::string dir_;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(SnapshotCorruptionTest, BadMagic) {
  auto bytes = pristine_;
  bytes[0] ^= 0xff;
  WriteFileBytes(path_, bytes);
  Status error;
  EXPECT_FALSE(ReadSnapshotInfo(path_, &error).has_value());
  EXPECT_NE(error.message().find("magic"), std::string::npos);
  ExpectRejected("bad magic");
}

TEST_F(SnapshotCorruptionTest, TruncatedAtEveryQuarter) {
  for (std::size_t denom = 1; denom <= 4; ++denom) {
    auto bytes = pristine_;
    bytes.resize(bytes.size() * (denom - 1) / denom + denom);  // incl. tiny
    WriteFileBytes(path_, bytes);
    ExpectRejected("truncated to " + std::to_string(bytes.size()));
  }
}

TEST_F(SnapshotCorruptionTest, FlippedHeaderByte) {
  auto bytes = pristine_;
  bytes[0x10] ^= 0x01;  // relation count field
  WriteFileBytes(path_, bytes);
  ExpectRejected("flipped header byte");
}

TEST_F(SnapshotCorruptionTest, FlippedTocChecksumByte) {
  // The toc records per-column checksums; flipping one of those bytes must
  // be caught by the toc section checksum.
  auto bytes = pristine_;
  bytes[kSnapshotHeaderBytes + 4 + 4 + 8 + 8] ^= 0x40;  // first col checksum
  WriteFileBytes(path_, bytes);
  ExpectRejected("flipped toc checksum byte");
}

TEST_F(SnapshotCorruptionTest, FlippedDataByteFailsOwnedLoadAndVerify) {
  auto bytes = pristine_;
  bytes[bytes.size() - 3] ^= 0x08;  // inside the last column segment
  WriteFileBytes(path_, bytes);
  Status error;
  EXPECT_FALSE(
      LoadSnapshot(path_, SnapshotLoadMode::kOwned, &error).has_value());
  EXPECT_NE(error.message().find("checksum"), std::string::npos);
  EXPECT_FALSE(VerifySnapshot(path_, &error));
  // Mapped mode defers data validation to VerifySnapshot by design (O(header)
  // loads); the front matter is intact, so the load itself succeeds.
  EXPECT_TRUE(
      LoadSnapshot(path_, SnapshotLoadMode::kMapped, &error).has_value());
}

TEST_F(SnapshotCorruptionTest, EmptyAndGarbageFiles) {
  WriteFileBytes(path_, {});
  ExpectRejected("empty file");
  WriteFileBytes(path_, {'h', 'e', 'l', 'l', 'o'});
  ExpectRejected("short garbage");
  std::vector<std::uint8_t> big(4096, 0xab);
  WriteFileBytes(path_, big);
  ExpectRejected("big garbage");
}

TEST_F(SnapshotCorruptionTest, FlippedStatsSectionByte) {
  // stats_offset lives at header offset 0x60 in v2 files; flipping a byte
  // inside the stats section must be caught by the stats checksum, not
  // silently mis-steer the cost model.
  std::uint64_t stats_offset = 0;
  for (int i = 0; i < 8; ++i) {
    stats_offset |= static_cast<std::uint64_t>(pristine_[0x60 + i]) << (8 * i);
  }
  ASSERT_GT(stats_offset, 0u);
  ASSERT_LT(stats_offset, pristine_.size());
  auto bytes = pristine_;
  bytes[stats_offset] ^= 0x04;  // first column's distinct count
  WriteFileBytes(path_, bytes);
  Status error;
  EXPECT_FALSE(ReadSnapshotInfo(path_, &error).has_value());
  EXPECT_NE(error.message().find("stats"), std::string::npos) << error;
  ExpectRejected("flipped stats byte");
}

TEST_F(SnapshotCorruptionTest, UnsupportedFutureVersionIsRejected) {
  auto bytes = pristine_;
  bytes[0x08] = 3;  // version field: a format this reader does not know
  WriteFileBytes(path_, bytes);
  Status error;
  EXPECT_FALSE(ReadSnapshotInfo(path_, &error).has_value());
  EXPECT_NE(error.message().find("unsupported snapshot version"), std::string::npos)
      << error;
  ExpectRejected("future version");
}

// --- v1 backward compatibility ---------------------------------------------

TEST(SnapshotV1CompatTest, V1FilesLoadWithLazyStatsInBothModes) {
  // Old-format snapshots (no stats section) must keep loading; their
  // tables simply have no persisted stats, and the cost model computes
  // them lazily on first use.
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/v1.sharpcq";
  Database db;
  for (int i = 0; i < 24; ++i) db.AddTuple("e", {i % 6, i});
  SnapshotWriter writer;
  writer.AddDatabase(db);
  writer.set_format_version(kSnapshotVersionV1);
  Status error;
  ASSERT_TRUE(writer.Finish(path, nullptr, &error).has_value()) << error;

  auto info = ReadSnapshotInfo(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kSnapshotVersionV1);
  ASSERT_EQ(info->relations.size(), 1u);
  EXPECT_TRUE(info->relations[0].stats.empty());
  EXPECT_TRUE(VerifySnapshot(path, &error)) << error;

  auto q = ParseQuery("Q(X) <- e(X,Y), e(X,Z)");
  ASSERT_TRUE(q.has_value());
  CountingEngine engine;
  const CountInt expected = engine.Count(*q, db).count;
  for (SnapshotLoadMode mode :
       {SnapshotLoadMode::kOwned, SnapshotLoadMode::kMapped}) {
    auto loaded = LoadSnapshot(path, mode, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    auto backing = loaded->db.ColumnarBacking("e");
    ASSERT_NE(backing, nullptr);
    // Nothing installed at load time; Stats() computes on demand and the
    // result matches a v2 writer's persisted section.
    EXPECT_EQ(backing->StatsIfPresent(), nullptr);
    // The engine (cost model on by default) still counts correctly.
    EXPECT_EQ(engine.Count(*q, loaded->db).count, expected);
    auto lazy = backing->Stats();
    ASSERT_NE(lazy, nullptr);
    EXPECT_EQ(*lazy, ComputeTableStats(*backing));
    EXPECT_EQ(lazy->columns[0].distinct, 6u);
  }
}

TEST(SnapshotV1CompatTest, V1AndV2CarryIdenticalDataSections) {
  // The stats section is purely additive: the dict, toc layout, and tuple
  // data of a v2 file are the same bytes a v1 writer emits, just shifted
  // by the stats extent — so both versions load identical databases.
  const std::string dir = MakeScratchDir();
  Database db;
  ValueDict dict;
  db.AddTuple("works", {dict.Intern("ann"), dict.Intern("rome")});
  db.AddTuple("works", {dict.Intern("bo"), dict.Intern("oslo")});
  Status error;
  SnapshotWriter v1;
  v1.AddDatabase(db);
  v1.set_format_version(kSnapshotVersionV1);
  ASSERT_TRUE(v1.Finish(dir + "/v1.sharpcq", &dict, &error).has_value())
      << error;
  SnapshotWriter v2;
  v2.AddDatabase(db);
  ASSERT_TRUE(v2.Finish(dir + "/v2.sharpcq", &dict, &error).has_value())
      << error;

  auto a = LoadSnapshot(dir + "/v1.sharpcq", SnapshotLoadMode::kOwned, &error);
  ASSERT_TRUE(a.has_value()) << error;
  auto b = LoadSnapshot(dir + "/v2.sharpcq", SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(a->db.TotalTuples(), b->db.TotalTuples());
  EXPECT_EQ(a->dict.size(), b->dict.size());
  auto q = ParseQuery("Q(W) <- works(W, 'rome')", &a->dict);
  ASSERT_TRUE(q.has_value());
  CountingEngine engine;
  EXPECT_EQ(engine.Count(*q, a->db).count, engine.Count(*q, b->db).count);
  // And the profiles agree — one persisted, one computed lazily.
  EXPECT_EQ(BuildDataProfile(a->db).Fingerprint(),
            BuildDataProfile(b->db).Fingerprint());
}

// --- CSV -> writer streaming -----------------------------------------------

TEST(SnapshotWriterTest, CsvStreamsStraightIntoSnapshot) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/csv.sharpcq";
  std::istringstream csv("1,2\n2,3\n3,1\n");
  SnapshotWriter writer;
  CsvResult result = LoadRelationCsvIntoWriter(csv, "e", &writer);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.tuples, 3u);
  Status error;
  ASSERT_TRUE(writer.Finish(path, nullptr, &error).has_value()) << error;

  auto loaded = LoadSnapshot(path, SnapshotLoadMode::kOwned, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  auto q = ParseQuery("Q(X) <- e(X,Y), e(Y,Z), e(Z,X)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(CountingEngine().Count(*q, loaded->db).count, CountInt{3});
}

TEST(SnapshotWriterTest, ArityConflictAcrossCsvFilesIsAParseError) {
  // Two files feeding one relation with different arities is bad data and
  // must surface as kParseError (CLI exit 4), not an invariant abort.
  SnapshotWriter writer;
  std::istringstream first("1,2\n");
  ASSERT_TRUE(LoadRelationCsvIntoWriter(first, "r", &writer).ok());
  std::istringstream second("1,2,3\n");
  CsvResult result = LoadRelationCsvIntoWriter(second, "r", &writer);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("arity"), std::string::npos);
}

// --- catalog ---------------------------------------------------------------

TEST(CatalogTest, GenerationSwapKeepsOldEntryServableAndPlanCacheWarm) {
  const std::string root = MakeScratchDir() + "/catalog";
  Catalog catalog(root);
  Status error;

  Database gen1;
  gen1.AddTuple("e", {1, 2});
  gen1.AddTuple("e", {2, 1});
  ASSERT_TRUE(catalog.Ingest("g", gen1, nullptr, &error).has_value()) << error;

  auto entry1 = catalog.Open("g", &error);
  ASSERT_NE(entry1, nullptr) << error;
  EXPECT_EQ(entry1->generation, 1u);

  auto q = ParseQuery("Q(X,Y) <- e(X,Y), e(Y,X)");
  ASSERT_TRUE(q.has_value());
  CountResult first = entry1->engine->Count(*q, *entry1->db);
  EXPECT_EQ(first.count, CountInt{2});
  EXPECT_FALSE(first.cache_hit);

  // Ingest generation 2 while entry1 is still held (ingest-while-serving).
  // Doubling the relation moves its row-count size class (2 rows -> 4).
  Database gen2;
  gen2.AddTuple("e", {1, 2});
  gen2.AddTuple("e", {2, 1});
  gen2.AddTuple("e", {3, 4});
  gen2.AddTuple("e", {4, 3});
  ASSERT_TRUE(catalog.Ingest("g", gen2, nullptr, &error).has_value()) << error;

  auto entry2 = catalog.Open("g", &error);
  ASSERT_NE(entry2, nullptr) << error;
  EXPECT_EQ(entry2->generation, 2u);
  EXPECT_NE(entry1->db.get(), entry2->db.get());
  // Same engine across generations, but the plan cache keys on the data
  // profile fingerprint: the ingest changed the relation's size class, so
  // the first count against generation 2 re-plans for the new data.
  EXPECT_EQ(entry1->engine.get(), entry2->engine.get());
  EXPECT_NE(entry1->profile.Fingerprint(), entry2->profile.Fingerprint());
  CountResult second = entry2->engine->Count(*q, *entry2->db);
  EXPECT_EQ(second.count, CountInt{4});
  EXPECT_FALSE(second.cache_hit);
  // Once planned for this profile class, repeats hit the warm cache.
  CountResult third = entry2->engine->Count(*q, *entry2->db);
  EXPECT_EQ(third.count, CountInt{4});
  EXPECT_TRUE(third.cache_hit);

  // The superseded generation still serves exact answers, from its own
  // still-cached plan (its profile class never left the cache).
  CountResult old_gen = entry1->engine->Count(*q, *entry1->db);
  EXPECT_EQ(old_gen.count, CountInt{2});
  EXPECT_TRUE(old_gen.cache_hit);

  // An ingest that leaves the profile class unchanged keeps the cache
  // warm: generation 3 re-adds the same tuples.
  ASSERT_TRUE(catalog.Ingest("g", gen2, nullptr, &error).has_value()) << error;
  auto entry3 = catalog.Open("g", &error);
  ASSERT_NE(entry3, nullptr) << error;
  EXPECT_EQ(entry3->profile.Fingerprint(), entry2->profile.Fingerprint());
  CountResult fourth = entry3->engine->Count(*q, *entry3->db);
  EXPECT_EQ(fourth.count, CountInt{4});
  EXPECT_TRUE(fourth.cache_hit);

  // Re-opening the current generation is cached (same Entry object).
  EXPECT_EQ(catalog.Open("g", &error).get(), entry3.get());

  EXPECT_EQ(catalog.ListDatabases(), std::vector<std::string>{"g"});
  EXPECT_EQ(catalog.CurrentGeneration("g", &error), 3u);
}

TEST(CatalogTest, MalformedManifestFailsIngestInsteadOfResetting) {
  // Regression: a present-but-corrupt manifest must fail the ingest, not
  // silently restart at generation 1 (which would rename over an existing
  // immutable snapshot a reader may be mapping).
  const std::string root = MakeScratchDir() + "/catalog";
  Catalog catalog(root);
  Status error;
  Database db;
  db.AddTuple("e", {1, 2});
  ASSERT_TRUE(catalog.Ingest("g", db, nullptr, &error).has_value()) << error;
  ASSERT_TRUE(catalog.Ingest("g", db, nullptr, &error).has_value()) << error;
  const auto gen1_bytes = ReadFileBytes(root + "/g/snapshot-000001.sharpcq");

  {
    std::ofstream manifest(root + "/g/MANIFEST", std::ios::trunc);
    manifest << "garbage\n";
  }
  EXPECT_FALSE(catalog.Ingest("g", db, nullptr, &error).has_value());
  EXPECT_FALSE(error.ok());
  // Generation 1 was not overwritten.
  EXPECT_EQ(ReadFileBytes(root + "/g/snapshot-000001.sharpcq"), gen1_bytes);
}

TEST(CatalogTest, RejectsEscapingNamesAndMissingDatabases) {
  const std::string root = MakeScratchDir() + "/catalog";
  Catalog catalog(root);
  Status error;
  Database db;
  db.AddTuple("e", {1});
  EXPECT_FALSE(catalog.Ingest("../evil", db, nullptr, &error).has_value());
  EXPECT_FALSE(catalog.Ingest("a/b", db, nullptr, &error).has_value());
  EXPECT_EQ(catalog.Open("absent", &error), nullptr);
  EXPECT_NE(error.message().find("absent"), std::string::npos);
}

// --- paper example through snapshots (acceptance criterion) ----------------

TEST(SnapshotRoundTripTest, WorkforceQ0AgreesThroughBothLoadPaths) {
  const std::string dir = MakeScratchDir();
  const std::string path = dir + "/q0.sharpcq";
  ConjunctiveQuery q0 = MakeQ0();
  Q0DatabaseParams params;
  Database db = MakeQ0Database(params);
  CountingEngine engine;
  const CountInt expected = engine.Count(q0, db).count;

  Status error;
  ASSERT_TRUE(WriteSnapshot(db, nullptr, path, &error).has_value()) << error;
  auto owned = LoadSnapshot(path, SnapshotLoadMode::kOwned, &error);
  ASSERT_TRUE(owned.has_value()) << error;
  auto mapped = LoadSnapshot(path, SnapshotLoadMode::kMapped, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  EXPECT_EQ(engine.Count(q0, owned->db).count, expected);
  EXPECT_EQ(engine.Count(q0, mapped->db).count, expected);
}

}  // namespace
}  // namespace sharpcq
