#ifndef SHARPCQ_TESTS_TEST_UTIL_H_
#define SHARPCQ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "util/id_set.h"

namespace sharpcq {

// The variable set {names...} resolved against q's name table.
inline IdSet VarsOf(const ConjunctiveQuery& q,
                    std::initializer_list<const char*> names) {
  IdSet out;
  for (const char* n : names) out.Insert(q.VarByName(n));
  return out;
}

// Sorted copy of an edge list, for order-insensitive comparison.
inline std::vector<IdSet> SortedEdges(std::vector<IdSet> edges) {
  std::sort(edges.begin(), edges.end());
  return edges;
}

// True if `edges` contains `edge`.
inline bool HasEdge(const std::vector<IdSet>& edges, const IdSet& edge) {
  return std::find(edges.begin(), edges.end(), edge) != edges.end();
}

}  // namespace sharpcq

#endif  // SHARPCQ_TESTS_TEST_UTIL_H_
