#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.h"
#include "decomp/explain.h"
#include "gen/paper_queries.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

TEST(CsvTest, LoadsNumericTuples) {
  std::istringstream in("1,2\n3,4\n# comment\n\n5,6\n");
  Database db;
  CsvResult loaded = LoadRelationCsv(in, "r", &db);
  ASSERT_TRUE(loaded.ok()) << loaded.message;
  EXPECT_EQ(loaded.tuples, 3u);
  EXPECT_EQ(db.relation("r").size(), 3u);
  EXPECT_TRUE(db.relation("r").ContainsRow(std::vector<Value>{5, 6}));
}

TEST(CsvTest, SymbolicFieldsInterned) {
  std::istringstream in("alice,project_x\nbob,project_x\n");
  Database db;
  ValueDict dict;
  CsvResult loaded = LoadRelationCsv(in, "works_on", &db, &dict);
  ASSERT_TRUE(loaded.ok()) << loaded.message;
  EXPECT_EQ(loaded.tuples, 2u);
  ASSERT_TRUE(dict.Find("alice").has_value());
  EXPECT_TRUE(db.relation("works_on")
                  .ContainsRow(std::vector<Value>{*dict.Find("alice"),
                                                  *dict.Find("project_x")}));
}

TEST(CsvTest, RejectsSymbolsWithoutDict) {
  std::istringstream in("alice,1\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("ValueDict"), std::string::npos);
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream in("1,2\n3\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("arity"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyFieldWithLineAndColumn) {
  // "1,,3" used to split as a 2-field row (empty pieces dropped), silently
  // locking the relation's arity to 2 when it was the first data line and
  // shifting values into the wrong columns on later lines.
  std::istringstream in("# header comment\n1,,3\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("line 2"), std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("column 2"), std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("empty field"), std::string::npos)
      << result.message;
}

TEST(CsvTest, RejectsWhitespaceOnlyField) {
  // Trimming reduces a whitespace-only field to empty; it must be rejected
  // like any other empty field, not shifted out of the row.
  std::istringstream in("1,2,3\n4,  ,6\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("line 2, column 2"), std::string::npos)
      << result.message;
}

TEST(CsvTest, RejectsTrailingEmptyFieldAsArityMismatch) {
  // A trailing comma now produces a real (empty) field, so "5,6," is a
  // 3-field row against an established arity of 2.
  std::istringstream in("1,2\n5,6,\n");
  Database db;
  CsvResult result = LoadRelationCsv(in, "r", &db);
  EXPECT_EQ(result.status, CsvStatus::kParseError);
  EXPECT_NE(result.message.find("arity"), std::string::npos)
      << result.message;
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("# only comments\n");
  Database db;
  EXPECT_EQ(LoadRelationCsv(in, "r", &db).status, CsvStatus::kParseError);
}

TEST(CsvTest, MissingFileDistinctFromParseError) {
  // The satellite fix of ISSUE 4: "file missing" and "bad content" used to
  // collapse into one nullopt; callers (the CLI's exit codes) need the
  // difference.
  Database db;
  CsvResult missing =
      LoadRelationCsvFile("/nonexistent/definitely_absent.csv", "r", &db);
  EXPECT_EQ(missing.status, CsvStatus::kFileMissing);
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.message.find("no such file"), std::string::npos);
}

TEST(CsvTest, RoundTripsThroughWrite) {
  std::istringstream in("7,-8\n9,10\n");
  Database db;
  ASSERT_TRUE(LoadRelationCsv(in, "r", &db).ok());
  std::ostringstream out;
  WriteRelationCsv(db, "r", out);
  std::istringstream back(out.str());
  Database db2;
  ASSERT_TRUE(LoadRelationCsv(back, "r", &db2).ok());
  EXPECT_TRUE(SameRowSet(db.relation("r"), db2.relation("r")));
}

TEST(ExplainTest, HypertreeRendering) {
  ConjunctiveQuery q = MakeQh2(2);
  Hypertree ht = MakeQh2MergedHypertree(q, 2);
  std::string text = ExplainHypertree(ht, q);
  // Root line mentions both guards and the merged chi label.
  EXPECT_NE(text.find("[r, s]"), std::string::npos) << text;
  EXPECT_NE(text.find("X0"), std::string::npos);
  // Children are indented.
  EXPECT_NE(text.find("\n  {"), std::string::npos) << text;
}

TEST(ExplainTest, BagTreeRenderingWithNamedViews) {
  ConjunctiveQuery q = MakeQ1();
  std::vector<std::pair<std::string, IdSet>> named = {
      {"v_all", q.AllVars()}};
  ViewSet views = ViewsFromNamedRelations(named);
  std::vector<IdSet> cover = q.BuildHypergraph().edges();
  auto result = FindTreeProjection(cover, views);
  ASSERT_TRUE(result.has_value());
  std::string text = ExplainBagTree(result->tree, views, q);
  EXPECT_NE(text.find("[v_all]"), std::string::npos) << text;
}

TEST(ExplainTest, GuardViewRendering) {
  ConjunctiveQuery q = MakeQ0();
  auto ht = FindHypertreeDecomposition(q, 2);
  ASSERT_TRUE(ht.has_value());
  std::string text = ExplainHypertree(*ht, q);
  // Every vertex line has a guard list.
  EXPECT_NE(text.find("["), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<std::ptrdiff_t>(ht->num_vertices()));
}

}  // namespace
}  // namespace sharpcq
