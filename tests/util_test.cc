#include <gtest/gtest.h>

#include "util/count_int.h"
#include "util/hash.h"
#include "util/id_set.h"
#include "util/string_util.h"

namespace sharpcq {
namespace {

TEST(IdSetTest, NormalizesOnConstruction) {
  IdSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
}

TEST(IdSetTest, FromVectorNormalizes) {
  IdSet s = IdSet::FromVector({9, 2, 2, 7});
  EXPECT_EQ(s, (IdSet{2, 7, 9}));
}

TEST(IdSetTest, RangeBuildsPrefix) {
  EXPECT_EQ(IdSet::Range(3), (IdSet{0, 1, 2}));
  EXPECT_TRUE(IdSet::Range(0).empty());
}

TEST(IdSetTest, ContainsInsertRemove) {
  IdSet s{2, 4};
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  s.Insert(3);
  EXPECT_TRUE(s.Contains(3));
  s.Insert(3);  // idempotent
  EXPECT_EQ(s.size(), 3u);
  s.Remove(4);
  EXPECT_FALSE(s.Contains(4));
  s.Remove(4);  // idempotent
  EXPECT_EQ(s.size(), 2u);
}

TEST(IdSetTest, SubsetAndIntersects) {
  IdSet a{1, 2};
  IdSet b{1, 2, 3};
  IdSet c{4, 5};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(IdSet{}.IsSubsetOf(c));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(IdSet{}.Intersects(a));
}

TEST(IdSetTest, SetAlgebra) {
  IdSet a{1, 2, 3};
  IdSet b{3, 4};
  EXPECT_EQ(Union(a, b), (IdSet{1, 2, 3, 4}));
  EXPECT_EQ(Intersect(a, b), (IdSet{3}));
  EXPECT_EQ(Difference(a, b), (IdSet{1, 2}));
  EXPECT_EQ(Difference(b, a), (IdSet{4}));
}

TEST(IdSetTest, OrderingAndHash) {
  IdSet a{1, 2};
  IdSet b{1, 3};
  EXPECT_LT(a, b);
  EXPECT_EQ(IdSetHash()(a), IdSetHash()(IdSet{2, 1}));
}

TEST(IdSetTest, ToStringWithNames) {
  IdSet s{0, 2};
  auto name = [](std::uint32_t v) { return std::string(1, 'A' + v); };
  EXPECT_EQ(s.ToString(name), "{A,C}");
  EXPECT_EQ((IdSet{}).ToString(), "{}");
}

TEST(CountIntTest, ToStringSmallAndLarge) {
  EXPECT_EQ(CountToString(0), "0");
  EXPECT_EQ(CountToString(12345), "12345");
  // 2^100 = 1267650600228229401496703205376.
  CountInt big = CountInt{1} << 100;
  EXPECT_EQ(CountToString(big), "1267650600228229401496703205376");
}

TEST(CountIntTest, ParseRoundTrip) {
  CountInt v = 0;
  ASSERT_TRUE(ParseCount("1267650600228229401496703205376", &v));
  EXPECT_EQ(v, CountInt{1} << 100);
  EXPECT_FALSE(ParseCount("", &v));
  EXPECT_FALSE(ParseCount("12a", &v));
}

TEST(CountIntTest, ParseRejectsOverflowAtBoundary) {
  // 2^128 - 1 is the largest representable count; everything at or above
  // 2^128 must be rejected. The old post-hoc `next < value` check let
  // wrapped values through whenever the wrap landed above the previous
  // partial value.
  const std::string kMaxDecimal = "340282366920938463463374607431768211455";
  CountInt v = 0;
  ASSERT_TRUE(ParseCount(kMaxDecimal, &v));
  EXPECT_EQ(v, ~CountInt{0});
  EXPECT_EQ(CountToString(v), kMaxDecimal);

  // Exactly 2^128 and the first values above it.
  EXPECT_FALSE(ParseCount("340282366920938463463374607431768211456", &v));
  EXPECT_FALSE(ParseCount("340282366920938463463374607431768211457", &v));
  // Old-check escapes: the wrap of 3.99e38 lands at ~5.9e37, which is
  // *above* the previous partial value 3.99e37, so `next < value` was
  // false and the wrapped garbage parsed successfully. Same for longer
  // inputs that wrap more than once.
  EXPECT_FALSE(ParseCount("399999999999999999999999999999999999999", &v));
  EXPECT_FALSE(ParseCount("999999999999999999999999999999999999999999", &v));
  // Rejection must not clobber the output.
  EXPECT_EQ(v, ~CountInt{0});
}

TEST(StringUtilTest, SplitAndTrim) {
  auto pieces = SplitAndTrim(" a, b , c ", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitAndTrimPreservesEmptyPieces) {
  // Positional formats depend on empty pieces surviving the split: "1,,3"
  // is a three-field row with an empty middle, not a two-field row.
  auto pieces = SplitAndTrim("1,,3", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "1");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "3");

  auto padded = SplitAndTrim(" a, b ,, c ", ',');
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_EQ(padded[2], "");

  EXPECT_EQ(SplitAndTrim("", ',').size(), 1u);
  EXPECT_EQ(SplitAndTrim(",", ',').size(), 2u);
  auto trailing = SplitAndTrim("a,", ',');
  ASSERT_EQ(trailing.size(), 2u);
  EXPECT_EQ(trailing[0], "a");
  EXPECT_EQ(trailing[1], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(HashTest, RangeIsOrderSensitive) {
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

}  // namespace
}  // namespace sharpcq
