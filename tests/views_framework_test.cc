// The general tree-projection framework of Section 3 with *named* views:
// view relations stored in the database, legality checking, and the
// Corollary 3.8 pipeline (decide #-decomposition w.r.t. V, then count).

#include <gtest/gtest.h>

#include "core/legality.h"
#include "core/materialize.h"
#include "core/sharp_counting.h"
#include "count/enumeration.h"
#include "data/var_relation.h"
#include "gen/paper_queries.h"
#include "query/atom_relation.h"
#include "tests/test_util.h"

namespace sharpcq {
namespace {

// Materializes the join of the atoms covering `vars` into a database
// relation named `name` (columns in ascending VarId order) — a "solved
// subproblem" in the sense of Section 3.
void StoreSubqueryView(const ConjunctiveQuery& q, Database* db,
                       const std::string& name, const IdSet& vars) {
  VarRelation acc = VarRelation::Unit();
  bool first = true;
  for (const Atom& a : q.atoms()) {
    if (!a.Vars().Intersects(vars)) continue;
    VarRelation rel = AtomToVarRelation(a, *db);
    acc = first ? std::move(rel) : Join(acc, rel);
    first = false;
  }
  ASSERT_FALSE(first);
  VarRelation projected = Project(acc, Intersect(acc.vars(), vars));
  Relation& stored = db->DeclareRelation(
      name, static_cast<int>(projected.vars().size()));
  for (std::size_t i = 0; i < projected.size(); ++i) {
    stored.AddRow(projected.rel().Row(i));
  }
}

// The V0 view set of Example 3.5 / Figure 7(d), materialized as named
// relations over a Q0 database.
struct V0Fixture {
  ConjunctiveQuery q = MakeQ0();
  Database db;
  ViewSet views;

  explicit V0Fixture(std::uint64_t seed) {
    Q0DatabaseParams params;
    params.seed = seed;
    db = MakeQ0Database(params);
    std::vector<std::pair<std::string, IdSet>> named = {
        {"v_abi", VarsOf(q, {"A", "B", "I"})},
        {"v_be", VarsOf(q, {"B", "E"})},
        {"v_bcd", VarsOf(q, {"B", "C", "D"})},
        {"v_dfh", VarsOf(q, {"D", "F", "H"})}};
    for (const auto& [name, vars] : named) {
      StoreSubqueryView(q, &db, name, vars);
    }
    views = ViewsFromNamedRelations(named);
  }
};

TEST(ViewsFrameworkTest, SubqueryViewsAreLegal) {
  V0Fixture f(3);
  std::string why;
  EXPECT_TRUE(IsLegalViewDatabase(f.q, f.views, f.db, &why)) << why;
}

TEST(ViewsFrameworkTest, OverRestrictiveViewDetected) {
  V0Fixture f(3);
  // Empty out one view: clearly more restrictive than the query (unless
  // the query itself has no answers on this database).
  if (CountByBacktracking(f.q, f.db) == 0) GTEST_SKIP();
  f.db.mutable_relation("v_bcd") = Relation(3);
  std::string why;
  EXPECT_FALSE(IsLegalViewDatabase(f.q, f.views, f.db, &why));
  EXPECT_FALSE(why.empty());
}

TEST(ViewsFrameworkTest, Corollary38CountThroughNamedViews) {
  // Decide #-coveredness w.r.t. V0 and count through the named views only:
  // the Theorem 3.7 pipeline never joins more than one stored relation per
  // bag.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    V0Fixture f(seed);
    auto d = FindSharpDecomposition(f.q, f.views);
    ASSERT_TRUE(d.has_value()) << "seed " << seed;
    EXPECT_EQ(d->width, 1);  // every bag is guarded by one view
    CountResult result = CountViaSharpDecomposition(f.q, f.db, *d);
    EXPECT_EQ(result.count, CountByBacktracking(f.q, f.db))
        << "seed " << seed;
  }
}

TEST(ViewsFrameworkTest, MissingViewMakesQueryUncovered) {
  // Without the {B,C,D} view nothing covers the frontier edge {B,C}.
  ConjunctiveQuery q = MakeQ0();
  std::vector<std::pair<std::string, IdSet>> named = {
      {"v_abi", VarsOf(q, {"A", "B", "I"})},
      {"v_be", VarsOf(q, {"B", "E"})},
      {"v_dfh", VarsOf(q, {"D", "F", "H"})},
      {"v_cd", VarsOf(q, {"C", "D"})},
      {"v_bd", VarsOf(q, {"B", "D"})}};
  EXPECT_FALSE(
      FindSharpDecomposition(q, ViewsFromNamedRelations(named)).has_value());
}

TEST(ViewsFrameworkTest, MaterializeNamedViewReadsStoredRelation) {
  V0Fixture f(7);
  VarRelation rel = MaterializeView(f.views, 1, f.q, f.db);  // v_be
  EXPECT_EQ(rel.vars(), VarsOf(f.q, {"B", "E"}));
  // wi has one info per worker, filtered by the semijoin structure of the
  // subquery join; at minimum the view is non-trivial.
  EXPECT_GT(rel.size(), 0u);
}

TEST(ViewsFrameworkTest, NamedViewArityMismatchAborts) {
  V0Fixture f(7);
  EXPECT_DEATH(
      {
        ViewSet bad = ViewsFromNamedRelations(
            {{"v_be", VarsOf(f.q, {"B", "E", "I"})}});
        MaterializeView(bad, 0, f.q, f.db);
      },
      "arity mismatch");
}

}  // namespace
}  // namespace sharpcq
